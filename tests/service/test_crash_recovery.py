"""Crash-recovery suite: kill the service at the worst moments, restart,
and assert nothing is lost, leaked, or silently wrong.

Three crash sites, per the durability contract:

* **mid-upload** — staging files and half-written store entries must be
  reaped on restart, never served and never leaked;
* **mid-spill** — a torn result-cache entry must read as a miss;
* **mid-stream** — an open chunked-append session must be rebuilt from
  its checkpoint; the producer resumes from the last acknowledged chunk
  and the finalized digest is byte-identical to a batch upload.

"Kill" here means dropping every in-memory object and re-opening the
same data directory, after mutilating the on-disk state exactly the way
an untimely SIGKILL would have left it.
"""

import json

import numpy as np
import pytest

from repro.service.api import ServiceAPI
from repro.service.cache import ResultCache
from repro.service.store import TraceStore
from repro.trace import trace_digest, write_trace
from repro.trace.framing import encode_records_frame, split_records
from repro.trace.schema import EVENT_DTYPE
from repro.trace.writer import header_dict

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro():
    return make_micro_program().run().trace


# ---------------------------------------------------------------------------
# Mid-upload crashes (trace store).
# ---------------------------------------------------------------------------


class TestUploadCrash:
    def test_stale_staging_files_reaped(self, tmp_path, micro):
        store = TraceStore(tmp_path)
        store.put_trace(micro)
        # A crashed put_bytes/put_trace leaves unique staging files.
        (tmp_path / ".upload-deadc0de.tmp").write_bytes(b"half an upload")
        (tmp_path / ".stage-deadc0de.tmp").write_bytes(b"half a store write")
        reopened = TraceStore(tmp_path)
        assert len(reopened) == 1
        assert not list(tmp_path.glob(".upload-*.tmp"))
        assert not list(tmp_path.glob(".stage-*.tmp"))

    def test_orphan_body_without_sidecar_reaped(self, tmp_path, micro):
        store = TraceStore(tmp_path)
        entry = store.put_trace(micro)
        # Crash between the body write and the sidecar write: a valid
        # .clt with no .meta.json. Pre-fix this was skipped forever.
        orphan = tmp_path / f"{'a' * 64}.clt"
        orphan.write_bytes(entry.path.read_bytes())
        reopened = TraceStore(tmp_path)
        assert len(reopened) == 1
        assert not orphan.exists()

    def test_torn_body_never_visible(self, tmp_path, micro):
        """put_trace stages then os.replace()s: at no point can a
        half-written .clt sit at its final path.  Simulate the old
        failure (torn file at the final path, sidecar landed) and show
        the sidecar-after-body ordering makes it unreachable."""
        store = TraceStore(tmp_path)
        entry = store.put_trace(micro)
        # the sidecar is written after the body, so a torn body implies
        # no sidecar -> orphan -> reaped. A torn body *with* a sidecar
        # would need the crash to reorder writes we issue sequentially.
        assert json.loads(
            (tmp_path / f"{entry.digest}.meta.json").read_text()
        )["digest"] == entry.digest

    def test_concurrent_upload_staging_never_collides(self, tmp_path, micro):
        """Unique staging names: a leftover from a crashed upload cannot
        be clobbered or adopted by an unrelated concurrent upload."""
        store = TraceStore(tmp_path)
        leftover = tmp_path / ".upload-00000000000000000000000000000000.tmp"
        leftover.write_bytes(b"crashed upload residue")
        data = write_trace(micro, tmp_path / "up.clt").read_bytes()
        entry = store.put_bytes(data)
        assert leftover.read_bytes() == b"crashed upload residue"
        assert entry.digest == trace_digest(micro)
        (tmp_path / "up.clt").unlink()


# ---------------------------------------------------------------------------
# Mid-spill crashes (result cache).
# ---------------------------------------------------------------------------


class TestSpillCrash:
    def test_torn_spill_is_a_miss_after_restart(self, tmp_path):
        cache = ResultCache(capacity=1, disk_dir=tmp_path)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})  # spills 'a'
        # Crash mid-spill of 'c': torn JSON at the final path.
        (tmp_path / "c.json").write_text('{"n": ')
        reopened = ResultCache(capacity=1, disk_dir=tmp_path)
        assert reopened.get("c") is None  # miss, not an exception
        assert reopened.get("a") == {"n": 1}  # healthy entries unaffected
        assert reopened.stats()["misses"] == 1

    def test_tier_order_self_heals_after_torn_entry(self, tmp_path):
        cache = ResultCache(capacity=1, disk_dir=tmp_path, disk_capacity=4)
        (tmp_path / "torn.json").write_text("{")
        reopened = ResultCache(capacity=1, disk_dir=tmp_path, disk_capacity=4)
        assert reopened.get("torn") is None
        # The unreadable key is dropped from the trim order, not kept
        # forever as a phantom entry.
        assert reopened.stats()["disk_entries"] == 0


# ---------------------------------------------------------------------------
# Mid-stream crashes (checkpointed sessions). The acceptance test.
# ---------------------------------------------------------------------------


def _chunks(trace, chunk_events=7):
    return list(split_records(trace.records, chunk_events))


def _send(api, sid, chunks, start=0):
    for cid, block in enumerate(chunks[start:], start=start):
        status, ack = api.handle(
            "POST", f"/traces/{sid}/chunks", encode_records_frame(block, cid)
        )
        assert status == 202, ack
    return ack


def _wait_drained(api, sid, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = api.handle("GET", f"/streams/{sid}")
        if status["pending_chunks"] == 0:
            return status
        time.sleep(0.01)
    raise AssertionError(f"ingest never drained: {status}")


class TestStreamCrash:
    def test_restart_resumes_from_last_acked_chunk(self, tmp_path, micro):
        """Server killed mid-stream; restarted; producer resumes from the
        durable chunk; finalize digest == batch-upload digest."""
        chunks = _chunks(micro)
        assert len(chunks) >= 4
        api = ServiceAPI(tmp_path / "svc", workers=0)
        _, session = api.handle(
            "POST", "/streams", json.dumps({"name": "crashy"}).encode()
        )
        sid = session["id"]
        half = len(chunks) // 2
        _send(api, sid, chunks[:half])
        _wait_drained(api, sid)
        api.close()  # SIGKILL stand-in: no finalize, no cleanup

        api2 = ServiceAPI(tmp_path / "svc", workers=0)
        status, resumed = api2.handle("GET", f"/streams/{sid}")
        assert status == 200, "restarted server must not 404 an open session"
        assert resumed["resumed"] is True
        assert resumed["chunks"] == half  # next expected = last durable + 1

        # Producer resumes; overlapping re-sends are idempotent duplicates.
        _send(api2, sid, chunks, start=max(0, half - 1))
        _wait_drained(api2, sid)
        status, out = api2.handle(
            "POST", f"/traces/{sid}/finalize",
            json.dumps({"header": header_dict(micro)}).encode(),
        )
        assert status == 200, out
        assert out["trace"]["digest"] == trace_digest(micro)
        # The rebuilt incremental analyzer saw every event exactly once.
        assert out["snapshot"]["events"] == len(micro)
        api2.close()

    def test_torn_spool_tail_truncated(self, tmp_path, micro):
        """Crash mid-spill leaves a partial chunk past the checkpoint;
        recovery drops it and the producer re-sends that chunk."""
        chunks = _chunks(micro)
        api = ServiceAPI(tmp_path / "svc", workers=0)
        _, session = api.handle("POST", "/streams", b"{}")
        sid = session["id"]
        _send(api, sid, chunks[:2])
        _wait_drained(api, sid)
        api.close()

        spool = tmp_path / "svc" / "streams" / f"{sid}.spool"
        durable = spool.stat().st_size
        with open(spool, "ab") as fh:
            fh.write(b"\x01" * (EVENT_DTYPE.itemsize + 3))  # torn tail

        api2 = ServiceAPI(tmp_path / "svc", workers=0)
        assert spool.stat().st_size == durable  # tail gone
        _, resumed = api2.handle("GET", f"/streams/{sid}")
        assert resumed["chunks"] == 2
        _send(api2, sid, chunks, start=2)
        _wait_drained(api2, sid)
        _, out = api2.handle(
            "POST", f"/traces/{sid}/finalize",
            json.dumps({"header": header_dict(micro)}).encode(),
        )
        assert out["trace"]["digest"] == trace_digest(micro)
        api2.close()

    def test_lost_spool_restarts_session_from_zero(self, tmp_path, micro):
        chunks = _chunks(micro)
        api = ServiceAPI(tmp_path / "svc", workers=0)
        _, session = api.handle("POST", "/streams", b"{}")
        sid = session["id"]
        _send(api, sid, chunks[:3])
        _wait_drained(api, sid)
        api.close()

        (tmp_path / "svc" / "streams" / f"{sid}.spool").unlink()
        api2 = ServiceAPI(tmp_path / "svc", workers=0)
        _, resumed = api2.handle("GET", f"/streams/{sid}")
        assert resumed["chunks"] == 0  # honest: nothing durable survived
        _send(api2, sid, chunks)
        _wait_drained(api2, sid)
        _, out = api2.handle(
            "POST", f"/traces/{sid}/finalize",
            json.dumps({"header": header_dict(micro)}).encode(),
        )
        assert out["trace"]["digest"] == trace_digest(micro)
        api2.close()

    def test_rebuilt_analyzer_matches_uninterrupted_snapshot(self, tmp_path, micro):
        """The replayed spool rebuilds the estimator to the same state an
        uninterrupted server would hold."""
        chunks = _chunks(micro)
        half = len(chunks) // 2

        api = ServiceAPI(tmp_path / "a", workers=0)
        _, session = api.handle("POST", "/streams", b"{}")
        sid = session["id"]
        _send(api, sid, chunks[:half])
        _wait_drained(api, sid)
        api.close()
        api2 = ServiceAPI(tmp_path / "a", workers=0)
        _, resumed_snap = api2.handle("GET", f"/streams/{sid}/snapshot")

        ref = ServiceAPI(tmp_path / "b", workers=0)
        _, rsession = ref.handle("POST", "/streams", b"{}")
        _send(ref, rsession["id"], chunks[:half])
        _wait_drained(ref, rsession["id"])
        _, ref_snap = ref.handle("GET", f"/streams/{rsession['id']}/snapshot")

        for snap in (resumed_snap, ref_snap):
            for volatile in ("session", "elapsed", "state", "pending_chunks"):
                snap.pop(volatile, None)
        assert resumed_snap == ref_snap
        ref.close()
        api2.close()

    def test_finalized_sessions_not_recovered(self, tmp_path, micro):
        chunks = _chunks(micro)
        api = ServiceAPI(tmp_path / "svc", workers=0)
        _, session = api.handle("POST", "/streams", b"{}")
        sid = session["id"]
        _send(api, sid, chunks)
        _wait_drained(api, sid)
        _, out = api.handle(
            "POST", f"/traces/{sid}/finalize",
            json.dumps({"header": header_dict(micro)}).encode(),
        )
        assert out["trace"]["digest"] == trace_digest(micro)
        api.close()

        api2 = ServiceAPI(tmp_path / "svc", workers=0)
        assert api2.streams.recovered_sessions == 0
        status, _ = api2.handle("GET", f"/streams/{sid}")
        assert status == 404
        api2.close()

    def test_recovery_is_crash_safe_itself(self, tmp_path, micro):
        """A corrupt checkpoint (torn tmp rename is impossible, but disk
        rot is not) is skipped with a warning, not a boot failure."""
        api = ServiceAPI(tmp_path / "svc", workers=0)
        _, session = api.handle("POST", "/streams", b"{}")
        api.close()
        streams = tmp_path / "svc" / "streams"
        (streams / "deadbeef.ckpt.json").write_text("{torn")
        (streams / ".ckpt-junk.tmp").write_text("{}")
        api2 = ServiceAPI(tmp_path / "svc", workers=0)  # boots
        assert api2.streams.recovered_sessions == 1  # the healthy one
        assert not (streams / ".ckpt-junk.tmp").exists()
        api2.close()

    def test_spooled_counts_survive_restart(self, tmp_path, micro):
        chunks = _chunks(micro)
        api = ServiceAPI(tmp_path / "svc", workers=0)
        _, session = api.handle("POST", "/streams", b"{}")
        sid = session["id"]
        ack = _send(api, sid, chunks[:3])
        _wait_drained(api, sid)
        assert ack["durable_chunk"] <= 3
        api.close()
        api2 = ServiceAPI(tmp_path / "svc", workers=0)
        _, resumed = api2.handle("GET", f"/streams/{sid}")
        expected_events = sum(len(c) for c in chunks[:3])
        assert resumed["events"] == expected_events
        assert np.fromfile(
            tmp_path / "svc" / "streams" / f"{sid}.spool", dtype=EVENT_DTYPE
        ).shape[0] == expected_events
        api2.close()
