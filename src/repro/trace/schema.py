"""Numpy storage schema for event records.

Traces can contain millions of events (Radiosity at 24 threads produces
hundreds of thousands of lock operations), so bulk storage is a numpy
structured array rather than a list of Python objects.  This module owns
the dtype and the conversions in both directions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.trace.events import Event, EventType

__all__ = ["EVENT_DTYPE", "records_from_events", "events_from_records", "empty_records"]

#: Structured dtype of one event record; field order mirrors :class:`Event`.
EVENT_DTYPE = np.dtype(
    [
        ("seq", np.uint64),
        ("time", np.float64),
        ("tid", np.int32),
        ("etype", np.uint8),
        ("obj", np.int32),
        ("arg", np.int64),
    ]
)


def empty_records(n: int = 0) -> np.ndarray:
    """Allocate an uninitialised record array of ``n`` events."""
    return np.empty(n, dtype=EVENT_DTYPE)


def records_from_events(events: Iterable[Event]) -> np.ndarray:
    """Pack an iterable of :class:`Event` into a structured array."""
    items = list(events)
    out = empty_records(len(items))
    for i, ev in enumerate(items):
        out[i] = (ev.seq, ev.time, ev.tid, int(ev.etype), ev.obj, ev.arg)
    return out


def events_from_records(records: np.ndarray) -> Iterator[Event]:
    """Yield :class:`Event` views over a structured array."""
    for row in records:
        yield event_from_row(row)


def event_from_row(row: np.void) -> Event:
    """Convert one structured-array row into an :class:`Event`."""
    return Event(
        seq=int(row["seq"]),
        time=float(row["time"]),
        tid=int(row["tid"]),
        etype=EventType(int(row["etype"])),
        obj=int(row["obj"]),
        arg=int(row["arg"]),
    )
