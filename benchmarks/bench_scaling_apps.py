"""Extension: top-lock criticality growth across all queue/allocator apps.

Fig. 9 generalized — for Radiosity, TSP, Raytrace and Volrend, the top
lock's CP share must grow with thread count and exceed its wait share
at 24 threads.
"""

import pytest

from repro.experiments import scaling

from conftest import run_once


@pytest.mark.benchmark(group="scaling-apps")
def test_scaling_all_apps(benchmark, show):
    result = run_once(benchmark, scaling.run, thread_counts=(4, 24), seed=0)
    show(result.render())
    for app, series in result.values.items():
        cp4 = series[4]["cp_fraction"]
        cp24 = series[24]["cp_fraction"]
        wait24 = series[24]["wait_fraction"]
        assert cp24 > cp4, f"{app}: CP share must grow with threads"
        assert cp24 > wait24, f"{app}: CP Time must lead Wait Time at 24T"
