"""Identity-replay fidelity on the golden workloads.

Replaying a trace under the ``recorded`` protocol re-executes the
program with every contended grant forced back into its recorded order.
On the golden workloads this must be a perfect round trip: the same
completion time and a byte-identical rendered report.  This is the
trust anchor for every protocol forecast — if the identity replay
drifted, a "pi is 4% faster" forecast would be measuring replay noise.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.replay_whatif import replay_identity
from repro.workloads import get_workload

from tests.golden.test_golden_reports import CASES, _golden


@pytest.mark.parametrize("case", sorted(CASES))
def test_identity_replay_reproduces_golden_report(case):
    workload, params, nthreads, seed = CASES[case]
    trace = get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace
    result = replay_identity(trace)
    assert result.completion_time == trace.duration
    assert analyze(result.trace).render(10) == _golden(case)
