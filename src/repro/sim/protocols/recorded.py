"""The recorded (identity) protocol: replay a trace's own grant order.

Replaying a trace under plain FIFO almost — but not always — reproduces
it: simultaneous zero-duration acquisitions leave no timing evidence, so
their race can re-resolve the other way, flipping contended-OBTAIN flags
even when every timestamp matches.  The recorded protocol closes that
gap by consulting the original trace:

* per lock, grants happen in the recorded OBTAIN order — a thread that
  arrives at a free lock *ahead of its recorded turn* is queued until
  the rightful thread has taken (and released) it;
* each OBTAIN's contended flag is replayed verbatim from the trace;
* condition signals wake waiters in the recorded COND_WAKE order.

This is the fidelity guard behind every protocol forecast: the
``replay-identity`` check invariant replays each trace under this
protocol and requires bit-identical completion time and critical-lock
report.  On genuine divergence (a thread the order expects never shows
up) the replay deadlocks and surfaces as a check discrepancy rather
than silently drifting; where the recorded order runs out, behavior
falls back to FIFO.

Replay threads carry their original tid in ``SimThread.replay_tid``
(set by :class:`repro.replay.ReplayProgram`); object ids are remapped
through the old-to-new table the replay builder passes to
:meth:`RecordedProtocol.from_trace`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.protocols.base import LockProtocol
from repro.trace.events import EventType

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.sync import SimCondition, SimMutex, SimRWLock
    from repro.sim.thread import SimThread
    from repro.trace.trace import Trace

__all__ = ["RecordedProtocol"]


def _rtid(thread: "SimThread") -> int:
    """The trace tid this replay thread stands for."""
    rt = thread.replay_tid
    return thread.tid if rt is None else rt


class RecordedProtocol(LockProtocol):
    """Force lock grants and cond wake-ups into a trace's recorded order."""

    name = "recorded"

    def __init__(
        self,
        orders: dict[int, deque[tuple[int, int]]] | None = None,
        cond_orders: dict[int, deque[int]] | None = None,
    ) -> None:
        super().__init__()
        #: obj id -> deque of (tid, contended-arg), one entry per OBTAIN.
        self.orders = orders or {}
        #: cond obj id -> deque of waiter tids, one entry per COND_WAKE.
        self.cond_orders = cond_orders or {}

    @classmethod
    def from_trace(
        cls, trace: "Trace", obj_map: dict[int, int] | None = None
    ) -> "RecordedProtocol":
        """Extract grant/wake orders (``obj_map`` remaps old ids to new)."""
        orders: dict[int, deque[tuple[int, int]]] = {}
        cond_orders: dict[int, deque[int]] = {}
        for ev in trace:
            if ev.etype == EventType.OBTAIN:
                orders.setdefault(ev.obj, deque()).append((ev.tid, ev.arg))
            elif ev.etype == EventType.COND_WAKE:
                cond_orders.setdefault(ev.obj, deque()).append(ev.tid)
        if obj_map is not None:
            orders = {obj_map[o]: q for o, q in orders.items() if o in obj_map}
            cond_orders = {
                obj_map[o]: q for o, q in cond_orders.items() if o in obj_map
            }
        return cls(orders, cond_orders)

    # -- recorded-order plumbing --------------------------------------------

    def _next_tid(self, lock: Any) -> int | None:
        order = self.orders.get(lock.obj)
        return order[0][0] if order else None

    def grant_free(self, lock: Any, thread: "SimThread") -> bool:
        nxt = self._next_tid(lock)
        return nxt is None or nxt == _rtid(thread)

    def select(self, lock: Any) -> "SimThread | None":
        nxt = self._next_tid(lock)
        if nxt is None:
            return lock.waiters.popleft()  # order exhausted: FIFO fallback
        for i, waiter in enumerate(lock.waiters):
            if _rtid(waiter) == nxt:
                del lock.waiters[i]
                return waiter
        return None  # the rightful thread has not arrived yet

    def obtain_arg(self, lock: Any, thread: "SimThread", contended: bool) -> int:
        order = self.orders.get(lock.obj)
        if order and order[0][0] == _rtid(thread):
            return order.popleft()[1]
        return 1 if contended else 0  # divergence: default flag

    # -- reader-writer ------------------------------------------------------

    def rw_can_grant(self, rw: "SimRWLock", thread: "SimThread", write: bool) -> bool:
        if self._next_tid(rw) != _rtid(thread):
            return False
        if write:
            return rw.writer is None and not rw.readers
        return rw.writer is None

    def rw_drain(self, rw: "SimRWLock") -> list[tuple["SimThread", bool]]:
        # Order entries are consumed by ``obtain_arg`` when the engine
        # emits each grant's OBTAIN — *after* this loop returns.  Index
        # past the entries belonging to grants already made this call,
        # or a recorded reader batch would stall after its first member.
        order = self.orders.get(rw.obj)
        grants: list[tuple["SimThread", bool]] = []
        while rw.waiters:
            if order is None or len(grants) >= len(order):
                break  # order exhausted; arrivals fall back via rw_can_grant
            nxt = order[len(grants)][0]
            granted = False
            for i, (waiter, wants_write) in enumerate(rw.waiters):
                if _rtid(waiter) != nxt:
                    continue
                if wants_write:
                    if rw.writer is not None or rw.readers:
                        break
                    rw.writer = waiter
                else:
                    if rw.writer is not None:
                        break
                    rw.readers.add(waiter)
                del rw.waiters[i]
                grants.append((waiter, wants_write))
                granted = True
                break
            if not granted:
                break  # next-in-order absent or incompatible: wait
        return grants

    # -- condition variables ------------------------------------------------

    def select_cond_waiter(
        self, cv: "SimCondition"
    ) -> tuple["SimThread", "SimMutex"]:
        order = self.cond_orders.get(cv.obj)
        if order:
            nxt = order[0]
            for i, (waiter, m) in enumerate(cv.waiters):
                if _rtid(waiter) == nxt:
                    order.popleft()
                    del cv.waiters[i]
                    return waiter, m
        return cv.waiters.popleft()  # divergence/exhausted: FIFO fallback
