"""TracedRLock reentrancy: one critical section per ownership episode.

Nested re-acquisitions by the owning thread are bookkeeping, not
synchronization — they must not emit events, inflate invocation or
contention counts, or open phantom critical sections in the analysis.
"""

import time

from repro.core.analyzer import analyze
from repro.instrument import ProfilingSession
from repro.instrument.locks import TracedRLock
from repro.trace.events import EventType
from repro.trace.validate import validate_trace


def _lock_events(trace, obj):
    return [ev for ev in trace if ev.obj == obj]


def test_nested_acquires_emit_one_triple():
    with ProfilingSession() as s:
        rlock = TracedRLock(s, "R")
        with rlock:
            with rlock:
                with rlock:
                    pass
    trace = s.trace()
    validate_trace(trace)
    assert [ev.etype for ev in _lock_events(trace, rlock.obj)] == [
        EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE
    ]


def test_nested_acquires_do_not_inflate_analysis_counters():
    with ProfilingSession() as s:
        rlock = TracedRLock(s, "R")

        def worker():
            for _ in range(4):
                with rlock:
                    with rlock:  # nested: must be invisible
                        time.sleep(0.001)

        threads = [s.thread(worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    report = analyze(s.trace()).report
    m = report.lock("R")
    assert m.total_invocations == 8  # 2 threads x 4 outermost episodes


def test_nested_reacquire_never_counts_as_contended():
    with ProfilingSession() as s:
        rlock = TracedRLock(s, "R")
        with rlock:
            # The real RLock is held by us; a naive trylock-first probe
            # would succeed, but a buggy implementation that re-traced
            # nesting could mark this contended or emit a second OBTAIN.
            with rlock:
                pass
            with rlock:
                pass
    trace = s.trace()
    obtains = [
        ev for ev in _lock_events(trace, rlock.obj)
        if ev.etype == EventType.OBTAIN
    ]
    assert len(obtains) == 1
    assert obtains[0].arg == 0


def test_critical_section_spans_outermost_release():
    with ProfilingSession() as s:
        rlock = TracedRLock(s, "R")
        with rlock:
            with rlock:
                time.sleep(0.02)  # inside the nested hold
            time.sleep(0.01)  # still inside the outer hold
    trace = s.trace()
    events = _lock_events(trace, rlock.obj)
    obtain = next(ev for ev in events if ev.etype == EventType.OBTAIN)
    release = next(ev for ev in events if ev.etype == EventType.RELEASE)
    # The single traced critical section covers both sleeps (~30ms).
    assert release.time - obtain.time >= 0.025


def test_cross_thread_contention_still_detected():
    with ProfilingSession() as s:
        rlock = TracedRLock(s, "R")

        def holder():
            with rlock:
                with rlock:
                    time.sleep(0.05)

        def waiter():
            time.sleep(0.01)
            with rlock:
                pass

        threads = [s.thread(holder), s.thread(waiter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    trace = s.trace()
    validate_trace(trace)
    contended = [ev for ev in trace if ev.etype == EventType.OBTAIN and ev.arg == 1]
    assert len(contended) == 1
