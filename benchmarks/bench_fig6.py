"""Paper Fig. 6 (+ Tables 1 & 2): micro-benchmark lock ranking and speedups.

Regenerates: CP Time % / Wait Time % per lock and the speedup after
optimizing each lock with equal effort, at 4 threads (paper values: L1
16.67%/36.53%/1.26x, L2 83.33%/9.02%/1.37x).  The shape assertions:
TYPE 2 (wait) ranks L1 first, TYPE 1 (CP) ranks L2 first, and actually
optimizing L2 wins.
"""

import pytest

from repro.experiments import fig6
from repro.experiments.harness import table1, table2

from conftest import run_once


@pytest.mark.benchmark(group="tables")
def test_table1_and_table2(benchmark, show):
    t1 = run_once(benchmark, table1)
    show(t1.render())
    show(table2().render())
    assert len(t1.rows) >= 8


@pytest.mark.benchmark(group="fig6")
def test_fig6(benchmark, show):
    result = run_once(benchmark, fig6.run, nthreads=4)
    show(result.render())

    v = result.values
    # Identification: the two metrics disagree exactly as in the paper.
    assert v["L2"]["cp_fraction"] > v["L1"]["cp_fraction"]
    assert v["L1"]["wait_fraction"] > v["L2"]["wait_fraction"]
    # Paper's exact CP fractions hold analytically in virtual time.
    assert v["L1"]["cp_fraction"] == pytest.approx(1 / 6, abs=1e-9)
    assert v["L2"]["cp_fraction"] == pytest.approx(5 / 6, abs=1e-9)
    # Validation: optimizing the CP-chosen lock wins (paper: 1.37 vs 1.26).
    assert v["L2"]["speedup"] > v["L1"]["speedup"] > 1.0
