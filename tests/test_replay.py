"""Trace-driven replay: fidelity and modified re-runs."""

import pytest

from repro.errors import AnalysisError
from repro.replay import reconstruct
from repro.sim import Program
from repro.trace.validate import validate_trace
from repro.workloads import (
    LDAPServer,
    MicroBenchmark,
    Radiosity,
    SyntheticLocks,
    TSP,
    UTS,
    Volrend,
    WaterNSquared,
)

from tests.conftest import make_micro_program


REPLAY_CONFIGS = [
    (MicroBenchmark(), 4),
    (Radiosity(total_tasks=40, iterations=1), 4),
    (TSP(ncities=7), 4),
    (UTS(root_children=30), 4),
    (WaterNSquared(timesteps=1), 4),
    (Volrend(frames=1, tiles_per_frame=40), 4),
    (LDAPServer(requests=60), 4),
    (SyntheticLocks(ops_per_thread=20, barrier_every=7), 4),
]


@pytest.mark.parametrize(
    "wl,n", REPLAY_CONFIGS, ids=[type(w).__name__ for w, _ in REPLAY_CONFIGS]
)
def test_replay_reproduces_completion_time(wl, n):
    original = wl.run(nthreads=n, seed=13)
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(
        original.completion_time, abs=1e-9
    )
    validate_trace(replayed.trace)


def test_replay_preserves_event_structure(micro_trace):
    replayed = reconstruct(micro_trace).run()
    # Same number of lock operations, threads, objects.
    assert len(replayed.trace) == len(micro_trace)
    assert replayed.trace.thread_ids == micro_trace.thread_ids


def test_shrink_matches_ground_truth():
    base = MicroBenchmark().run(nthreads=4, seed=0)
    replay = reconstruct(base.trace)
    shrunk = replay.run(shrink_lock="L2", factor=1.5 / 2.5)
    actual = MicroBenchmark(optimize="L2").run(nthreads=4, seed=0)
    assert shrunk.completion_time == pytest.approx(actual.completion_time)


def test_shrink_to_zero():
    base = MicroBenchmark().run(nthreads=4, seed=0)
    res = reconstruct(base.trace).run(shrink_lock="L1", factor=0.0)
    # Without L1's work, only the serialized L2 chain remains: 4 * 2.5.
    assert res.completion_time == pytest.approx(10.0)


def test_negative_factor_rejected(micro_trace):
    with pytest.raises(AnalysisError, match="factor"):
        reconstruct(micro_trace).run(shrink_lock="L1", factor=-1.0)


def test_replay_under_fewer_cores(micro_trace):
    res = reconstruct(micro_trace).run(cores=1)
    # One core: the 4.5 of per-thread work serializes fully: 18.0.
    assert res.completion_time == pytest.approx(18.0)


def test_replay_spawn_join_program():
    prog = Program()

    def child(env, d):
        yield env.compute(d)

    def parent(env):
        hs = []
        for d in (1.0, 3.0, 2.0):
            h = yield env.spawn(child, d)
            hs.append(h)
        yield from env.join_all(hs)

    prog.spawn(parent)
    original = prog.run()
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(3.0)
    validate_trace(replayed.trace)


def test_replay_condition_variables():
    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")
    state = {"ready": 0}

    def waiter(env, i):
        yield env.acquire(lock)
        while state["ready"] == 0:
            yield env.cond_wait(cv, lock)
        state["ready"] -= 1
        yield env.release(lock)

    def signaller(env):
        for _ in range(2):
            yield env.compute(1.0)
            yield env.acquire(lock)
            state["ready"] += 1
            yield env.cond_signal(cv)
            yield env.release(lock)

    prog.spawn_workers(2, waiter)
    prog.spawn(signaller)
    original = prog.run()
    # Replay re-executes the cond protocol: same completion time.  (The
    # shared predicate state is *not* replayed — replay preserves the
    # synchronization structure, and the original signal pattern releases
    # the same number of waiters.)
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(original.completion_time)


def test_replay_semaphore_program():
    prog = Program()
    sem = prog.semaphore(2, "S")

    def body(env, i):
        yield env.sem_acquire(sem)
        yield env.compute(1.0)
        yield env.sem_release(sem)

    prog.spawn_workers(4, body)
    original = prog.run()
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(2.0)


def test_replay_rwlock_program():
    prog = Program()
    rw = prog.rwlock("rw")

    def reader(env, i):
        yield env.rw_acquire_read(rw)
        yield env.compute(2.0)
        yield env.rw_release_read(rw)

    def writer(env):
        yield env.compute(0.5)
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    prog.spawn_workers(2, reader)
    prog.spawn(writer)
    original = prog.run()
    replayed = reconstruct(original.trace).run()
    assert replayed.completion_time == pytest.approx(original.completion_time)
