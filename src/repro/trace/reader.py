"""Trace deserialization (see :mod:`repro.trace.writer` for the formats).

Two reading modes live here:

* :func:`read_trace` — load a complete trace file in one call (any
  container: binary ``.clt``, framed ``.cls`` stream, ``.jsonl``);
* :func:`iter_trace_chunks` — yield event-record batches in O(chunk)
  memory from the same containers, optionally **tail-following** a file
  that is still being written (the ``repro live`` path).
"""

from __future__ import annotations

import json
import os
import struct
import time
from collections.abc import Callable, Iterator
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.events import Event, EventType
from repro.trace.framing import CHUNK_MAGIC, read_frame, sort_stream_records
from repro.trace.schema import EVENT_DTYPE, records_from_events
from repro.trace.trace import Trace
from repro.trace.writer import MAGIC, objects_from_header

__all__ = ["read_trace", "iter_trace_chunks"]

_LEN_FMT = "<Q"
_LEN_SIZE = struct.calcsize(_LEN_FMT)


def read_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`repro.trace.write_trace`.

    The format is sniffed from the file contents, not the suffix, so
    renamed files still load.  Finalized chunk streams (``.cls``, see
    :mod:`repro.trace.framing`) load too.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(len(MAGIC))
    if head == MAGIC:
        return _read_binary(path)
    if head == CHUNK_MAGIC:
        return _read_stream(path)
    if not head:
        raise TraceFormatError(f"{path}: empty file is not a trace")
    if len(head) < len(MAGIC):
        # Too short for the binary magic, and a JSONL trace needs at
        # least its header line — nothing valid is this small.
        raise TraceFormatError(
            f"{path}: file too short ({len(head)} bytes) to be a trace"
        )
    return _read_jsonl(path)


def _read_binary_header(fh) -> dict:
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    raw_len = fh.read(_LEN_SIZE)
    if len(raw_len) != _LEN_SIZE:
        raise TraceFormatError("truncated header length")
    (header_len,) = struct.unpack(_LEN_FMT, raw_len)
    raw_header = fh.read(header_len)
    if len(raw_header) != header_len:
        raise TraceFormatError("truncated header")
    try:
        return json.loads(raw_header)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"corrupt header: {exc}") from exc


def _read_binary(path: Path) -> Trace:
    with open(path, "rb") as fh:
        try:
            header = _read_binary_header(fh)
        except TraceFormatError as exc:
            raise TraceFormatError(f"{path}: {exc}") from None
        nevents = int(header.get("nevents", 0))
        expected = nevents * EVENT_DTYPE.itemsize
        # Size-check before reading so the record block is materialized
        # exactly once (np.fromfile), not as bytes + array copy.
        body_len = os.fstat(fh.fileno()).st_size - fh.tell()
        if body_len != expected:
            raise TraceFormatError(
                f"{path}: expected {expected} bytes of records for {nevents} "
                f"events, got {body_len}"
            )
        records = np.fromfile(fh, dtype=EVENT_DTYPE, count=nevents)
    if len(records) != nevents:
        raise TraceFormatError(
            f"{path}: record block shrank while reading "
            f"({len(records)} of {nevents} events)"
        )
    return Trace(
        records=records,
        objects=objects_from_header(header),
        threads={int(t): name for t, name in header.get("threads", {}).items()},
        meta=header.get("meta", {}),
    )


def _read_stream(path: Path) -> Trace:
    """Assemble a finalized ``.cls`` chunk stream into a Trace."""
    batches: list[np.ndarray] = []
    header = None
    with open(path, "rb") as fh:
        while True:
            try:
                frame = read_frame(fh)
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}: {exc}") from None
            if frame is None:
                break
            if frame.is_trailer:
                header = frame.header
            else:
                batches.append(frame.records)
    if header is None:
        raise TraceFormatError(
            f"{path}: chunk stream has no trailer frame (not finalized?)"
        )
    records = (
        np.concatenate(batches) if batches else np.empty(0, dtype=EVENT_DTYPE)
    )
    return Trace(
        records=sort_stream_records(records),
        objects=objects_from_header(header),
        threads={int(t): name for t, name in header.get("threads", {}).items()},
        meta=header.get("meta", {}),
    )


def _read_jsonl(path: Path) -> Trace:
    events: list[Event] = []
    header = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                obj = _parse_jsonl_line(path, lineno, line)
                if isinstance(obj, dict) and "header" in obj:
                    header = obj["header"]
                    continue
                events.append(_event_from_jsonl(path, lineno, obj))
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"{path}: neither a binary .clt trace (bad magic) nor UTF-8 JSONL: {exc}"
        ) from exc
    if header is None:
        raise TraceFormatError(f"{path}: missing JSONL header line")
    return Trace.from_events(
        events,
        objects=objects_from_header(header),
        threads={int(t): name for t, name in header.get("threads", {}).items()},
        meta=header.get("meta", {}),
    )


def _parse_jsonl_line(path: Path, lineno: int, line: str):
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}:{lineno}: not JSON: {exc}") from exc


def _event_from_jsonl(path: Path, lineno: int, obj) -> Event:
    try:
        return Event(
            seq=int(obj["seq"]),
            time=float(obj["time"]),
            tid=int(obj["tid"]),
            etype=EventType[obj["etype"]],
            obj=int(obj.get("obj", -1)),
            arg=int(obj.get("arg", 0)),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"{path}:{lineno}: bad event record: {exc}") from exc


# ---------------------------------------------------------------------------
# Incremental reading
# ---------------------------------------------------------------------------


def iter_trace_chunks(
    path: str | Path,
    chunk_events: int = 65536,
    follow: bool = False,
    poll_interval: float = 0.05,
    timeout: float | None = None,
    stop: Callable[[], bool] | None = None,
) -> Iterator[np.ndarray]:
    """Yield event-record batches from a trace file in O(chunk) memory.

    Works on all three containers (sniffed, like :func:`read_trace`):

    * binary ``.clt`` — the record block is read ``chunk_events`` events
      at a time; the header's ``nevents`` is ignored, so a *growing*
      file (a flusher appending records past a pre-written header) reads
      cleanly up to the last complete record;
    * framed ``.cls`` streams — one batch per RECORDS frame (the
      producer chose the chunking); the trailer frame ends iteration;
    * ``.jsonl`` — events are parsed line-by-line and batched.

    With ``follow=True`` the iterator *tails* the file: at EOF (or a
    partial trailing record/frame/line) it sleeps ``poll_interval`` and
    retries, until ``stop()`` returns true or ``timeout`` seconds pass
    without any new data.  With ``follow=False`` a trailing partial
    record raises :class:`TraceFormatError` — silent truncation must not
    masquerade as a complete trace.

    Batches are yielded in file order with their original ``seq``/time
    values; consumers needing canonical trace order over the union
    should apply :func:`repro.trace.framing.sort_stream_records`.
    """
    path = Path(path)
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    waiter = _Waiter(follow, poll_interval, timeout, stop)
    # Sniff, waiting for the first bytes to land in follow mode.
    while True:
        with open(path, "rb") as fh:
            head = fh.read(max(len(MAGIC), len(CHUNK_MAGIC)))
        if len(head) >= len(MAGIC):
            break
        if not waiter.wait():
            if follow:
                return
            raise TraceFormatError(
                f"{path}: file too short ({len(head)} bytes) to be a trace"
            )
    if head.startswith(MAGIC):
        yield from _iter_binary_chunks(path, chunk_events, waiter)
    elif head.startswith(CHUNK_MAGIC):
        yield from _iter_stream_chunks(path, waiter)
    else:
        yield from _iter_jsonl_chunks(path, chunk_events, waiter)


class _Waiter:
    """Tail-follow pacing: sleep between polls, give up on stop/timeout."""

    def __init__(
        self,
        follow: bool,
        poll_interval: float,
        timeout: float | None,
        stop: Callable[[], bool] | None,
    ):
        self.follow = follow
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.stop = stop
        self._idle_since: float | None = None

    def note_progress(self) -> None:
        """New data was read; restart the idle-timeout clock."""
        self._idle_since = None

    def wait(self) -> bool:
        """Pause before re-polling; False = stop iterating (not an error)."""
        if not self.follow:
            return False
        if self.stop is not None and self.stop():
            return False
        now = time.monotonic()
        if self._idle_since is None:
            self._idle_since = now
        elif self.timeout is not None and now - self._idle_since >= self.timeout:
            return False
        time.sleep(self.poll_interval)
        return True


def _iter_binary_chunks(
    path: Path, chunk_events: int, waiter: _Waiter
) -> Iterator[np.ndarray]:
    itemsize = EVENT_DTYPE.itemsize
    with open(path, "rb") as fh:
        # The header may itself still be mid-write in follow mode.
        while True:
            fh.seek(0)
            try:
                _read_binary_header(fh)
                break
            except TraceFormatError as exc:
                if not waiter.wait():
                    raise TraceFormatError(f"{path}: {exc}") from None
        offset = fh.tell()
        while True:
            avail = os.fstat(fh.fileno()).st_size - offset
            whole = min(avail // itemsize, chunk_events)
            if whole > 0:
                fh.seek(offset)
                records = np.fromfile(fh, dtype=EVENT_DTYPE, count=int(whole))
                offset += len(records) * itemsize
                if len(records):
                    waiter.note_progress()
                    yield records
                    continue
            if not waiter.wait():
                leftover = os.fstat(fh.fileno()).st_size - offset
                if leftover and not waiter.follow:
                    raise TraceFormatError(
                        f"{path}: {leftover} trailing bytes are not a whole "
                        f"number of {itemsize}-byte records"
                    )
                return


def _iter_stream_chunks(path: Path, waiter: _Waiter) -> Iterator[np.ndarray]:
    with open(path, "rb") as fh:
        offset = 0
        while True:
            fh.seek(offset)
            try:
                frame = read_frame(fh)
            except TraceFormatError as exc:
                # Partial frame: either still being appended (retry) or
                # genuinely truncated.
                if waiter.wait():
                    continue
                if waiter.follow:
                    return
                raise TraceFormatError(f"{path}: {exc}") from None
            if frame is None:
                if not waiter.wait():
                    return
                continue
            offset = fh.tell()
            waiter.note_progress()
            if frame.is_trailer:
                return  # finalized: the stream is complete
            records = frame.records
            if len(records):
                yield records


def _iter_jsonl_chunks(
    path: Path, chunk_events: int, waiter: _Waiter
) -> Iterator[np.ndarray]:
    batch: list[Event] = []
    with open(path, "rb") as fh:
        offset = 0
        lineno = 0
        saw_header = False
        while True:
            fh.seek(offset)
            raw = fh.readline()
            # A line still being written has no trailing newline yet.
            complete = raw.endswith(b"\n")
            if raw and (complete or not waiter.follow):
                offset = fh.tell()
                lineno += 1
                line = raw.decode("utf-8").strip()
                if line:
                    obj = _parse_jsonl_line(path, lineno, line)
                    if isinstance(obj, dict) and "header" in obj:
                        saw_header = True
                    else:
                        batch.append(_event_from_jsonl(path, lineno, obj))
                        if len(batch) >= chunk_events:
                            yield records_from_events(batch)
                            batch = []
                waiter.note_progress()
                continue
            if batch:
                yield records_from_events(batch)
                batch = []
            if not waiter.wait():
                if not waiter.follow and not saw_header and lineno == 0:
                    raise TraceFormatError(f"{path}: missing JSONL header line")
                return
