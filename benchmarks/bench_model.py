"""Extension bench: the Eyerman-Eeckhout model [10] vs measured scaling.

The paper's §III.B builds on [10]'s insight that contended critical
sections bound speedup; this bench fits the model from per-thread-count
profiles of a strong-scaling workload (fixed total work) and compares
its prediction with the simulator's measured speedup — confirming both
why [10] is right about the ceiling and why per-lock critical-path
analysis is needed to know *which* lock imposes it.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.eyerman import fit_model
from repro.tables import format_table
from repro.workloads import SyntheticLocks

from conftest import run_once

TOTAL_OPS = 320
CS_COST = 0.15
NONCRIT_COST = 0.45


def make_workload(n: int) -> SyntheticLocks:
    """Fixed total work split over n threads (strong scaling)."""
    return SyntheticLocks(
        nlocks=1,
        zipf_skew=0.0,
        ops_per_thread=TOTAL_OPS // n,
        cs_cost=CS_COST,
        noncrit_cost=NONCRIT_COST,
    )


@pytest.mark.benchmark(group="model")
def test_model_vs_simulated_scaling(benchmark, show):
    def experiment():
        t1 = make_workload(1).run(nthreads=1, seed=5).completion_time
        rows = []
        measured = {}
        predicted = {}
        for n in (2, 4, 8, 16, 32):
            res = make_workload(n).run(nthreads=n, seed=5)
            model = fit_model(analyze(res.trace))
            measured[n] = t1 / res.completion_time
            predicted[n] = model.speedup(n)
            rows.append(
                [
                    n,
                    f"{measured[n]:.2f}",
                    f"{predicted[n]:.2f}",
                    f"{model.f_crit:.3f}",
                    f"{model.p_ctn:.3f}",
                ]
            )
        return rows, measured, predicted

    rows, measured, predicted = run_once(benchmark, experiment)
    show(format_table(
        ["Threads", "Measured speedup", "Model speedup", "fitted f_crit",
         "fitted p_ctn"],
        rows,
        title="[model] Eyerman-Eeckhout [10] vs simulator "
        "(1 hot lock, cs:noncrit = 1:3, fixed total work)",
    ))
    # Scaling saturates once the hot lock serializes (the [10] effect):
    # the marginal gain collapses at high thread counts.
    assert measured[8] / measured[2] > measured[32] / measured[8]
    # The true serialization bound: total CS time / total time.
    exact_ceiling = (CS_COST + NONCRIT_COST) / CS_COST
    assert measured[32] < exact_ceiling * 1.1
    # The fitted model tracks the measurement within 2x at every count.
    for n in measured:
        assert predicted[n] / measured[n] < 2.0
        assert predicted[n] / measured[n] > 0.5
