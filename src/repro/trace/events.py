"""Synchronization event records.

The paper's instrumentation (Fig. 4) records, at every ``MAGIC()`` point,
the timestamp, event type, synchronization-object identifier and thread
identifier.  We use the same four fields plus:

``seq``
    A globally monotonic sequence number.  Virtual-time traces routinely
    contain simultaneous events; ``seq`` makes event order total and
    deterministic (the simulator assigns it in causal order, so e.g. a
    lock RELEASE always precedes the OBTAIN it enables even when both
    carry the same timestamp).

``arg``
    One type-specific integer:

    =================  =====================================================
    event type         meaning of ``arg``
    =================  =====================================================
    OBTAIN             1 if the acquisition was contended (blocked), else 0
    BARRIER_ARRIVE /   barrier generation (episode) index, counted from 0
    BARRIER_DEPART
    COND_WAKE          tid of the signalling thread
    COND_SIGNAL /      number of threads woken
    COND_BROADCAST
    THREAD_CREATE      tid of the created child
    JOIN_BEGIN /       tid of the thread being joined
    JOIN_END
    ACQUIRE/RELEASE    rwlocks: 0 = read mode, 1 = write mode (0 otherwise)
    =================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventType", "ObjectKind", "Event", "NO_OBJECT"]

#: Object id used for events not tied to a synchronization object.
NO_OBJECT = -1


class EventType(enum.IntEnum):
    """Verb of a synchronization event (the paper's "event type")."""

    # -- lock-like objects (mutex, semaphore, rwlock) ---------------------
    ACQUIRE = 1  #: thread starts trying to acquire (paper: "acquire the lock")
    OBTAIN = 2  #: thread got ownership (paper: "obtain the lock")
    RELEASE = 3  #: thread released ownership (paper: "release the lock")
    # -- barriers ----------------------------------------------------------
    BARRIER_ARRIVE = 4  #: thread reached the barrier
    BARRIER_DEPART = 5  #: thread left the barrier (all arrived)
    # -- condition variables ------------------------------------------------
    COND_BLOCK = 6  #: thread started waiting on a condition variable
    COND_WAKE = 7  #: waiting thread received a signal (paper: "woken up")
    COND_SIGNAL = 8  #: signalling side (paper: "signal sent already")
    COND_BROADCAST = 9  #: broadcasting side
    # -- thread lifecycle ----------------------------------------------------
    THREAD_CREATE = 10  #: parent spawned a child thread
    THREAD_START = 11  #: first event of every thread
    THREAD_EXIT = 12  #: last event of every thread
    JOIN_BEGIN = 13  #: thread starts joining another thread
    JOIN_END = 14  #: join completed (target exited)

    @property
    def is_blocking_entry(self) -> bool:
        """True for events that may begin a blocked interval."""
        return self in _BLOCKING_ENTRY

    @property
    def is_wakeup(self) -> bool:
        """True for events that end a (potentially) blocked interval."""
        return self in _WAKEUP


_BLOCKING_ENTRY = frozenset(
    {EventType.ACQUIRE, EventType.BARRIER_ARRIVE, EventType.COND_BLOCK, EventType.JOIN_BEGIN}
)
_WAKEUP = frozenset(
    {EventType.OBTAIN, EventType.BARRIER_DEPART, EventType.COND_WAKE, EventType.JOIN_END}
)


class ObjectKind(enum.IntEnum):
    """Kind of synchronization object an event refers to."""

    NONE = 0
    MUTEX = 1
    BARRIER = 2
    CONDITION = 3
    SEMAPHORE = 4
    RWLOCK = 5

    @property
    def is_lock_like(self) -> bool:
        """Objects whose ownership transfers via ACQUIRE/OBTAIN/RELEASE."""
        return self in (ObjectKind.MUTEX, ObjectKind.SEMAPHORE, ObjectKind.RWLOCK)


@dataclass(frozen=True, slots=True)
class Event:
    """A single synchronization event record.

    Instances are the row type of :class:`repro.trace.Trace`; bulk storage
    is a numpy structured array (see :mod:`repro.trace.schema`), this class
    is the convenient per-row view.
    """

    seq: int
    time: float
    tid: int
    etype: EventType
    obj: int = NO_OBJECT
    arg: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        objpart = f" obj={self.obj}" if self.obj != NO_OBJECT else ""
        argpart = f" arg={self.arg}" if self.arg else ""
        return f"[{self.seq}] t={self.time:.6g} T{self.tid} {self.etype.name}{objpart}{argpart}"
