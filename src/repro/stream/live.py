"""Tail-follow a growing trace and maintain a rolling lock ranking.

This is the consumer half of live diagnosis: point it at a trace file
another process is still writing (``.clt``, ``.cls`` or ``.jsonl``) and
it feeds each new batch to an :class:`~repro.core.online.OnlineAnalyzer`
and periodically yields its snapshot.  The ``live`` CLI subcommand
renders these as they arrive.
"""

from __future__ import annotations

import json
import struct
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.core.online import OnlineAnalyzer
from repro.trace.framing import CHUNK_MAGIC, iter_frames
from repro.trace.reader import iter_trace_chunks
from repro.trace.writer import MAGIC

__all__ = ["read_live_header", "live_snapshots"]


def read_live_header(path: str | Path) -> dict[str, Any] | None:
    """Best-effort header (object/thread names) from a possibly-growing file.

    ``.clt`` and ``.jsonl`` carry the header up front, so names are
    available from the first byte; a ``.cls`` stream only learns them
    from the trailer frame, so this returns ``None`` until the stream is
    finalized.  Callers should simply try again later.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            probe = fh.read(len(MAGIC))
            if probe == MAGIC:
                (hlen,) = struct.unpack("<Q", fh.read(8))
                return json.loads(fh.read(hlen))
            if probe == CHUNK_MAGIC:
                for frame in iter_frames(path.read_bytes()):
                    if frame.is_trailer:
                        return frame.header
                return None
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline()
        return json.loads(first).get("header")
    except (OSError, ValueError, KeyError):
        return None


def live_snapshots(
    path: str | Path,
    *,
    top: int | None = 8,
    chunk_events: int = 65536,
    poll_interval: float = 0.25,
    refresh: float = 1.0,
    timeout: float | None = 5.0,
    stop: Callable[[], bool] | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield rolling analyzer snapshots while tailing ``path``.

    A snapshot is yielded at most every ``refresh`` seconds while data
    flows, plus one final snapshot when the follow ends (idle
    ``timeout``, a finished ``.cls`` stream, or ``stop()``).  Each
    snapshot dict additionally carries a ``rendered`` table.
    """
    analyzer = OnlineAnalyzer()
    header = read_live_header(path)
    if header:
        analyzer.register_names(header.get("objects", {}))
    last_emit = time.monotonic()
    emitted = False
    for batch in iter_trace_chunks(
        path,
        chunk_events=chunk_events,
        follow=True,
        poll_interval=poll_interval,
        timeout=timeout,
        stop=stop,
    ):
        analyzer.observe_batch(batch)
        now = time.monotonic()
        if not emitted or now - last_emit >= refresh:
            yield _snap(analyzer, top)
            last_emit = now
            emitted = True
    # Names may only have become available at the end (.cls trailer).
    header = read_live_header(path)
    if header:
        analyzer.register_names(header.get("objects", {}))
    yield _snap(analyzer, top)


def _snap(analyzer: OnlineAnalyzer, top: int | None) -> dict[str, Any]:
    snap = analyzer.snapshot(top=top)
    snap["rendered"] = analyzer.render(top if top is not None else 8)
    return snap
