#!/usr/bin/env python
"""Beyond the paper: lock criticality over time, lock-order safety, and
the Eyerman-Eeckhout speedup ceiling.

Builds a two-phase pipeline whose critical lock *changes mid-run* —
a whole-run ranking (the paper's Fig. 8 style) averages the phases away,
while windowed critical lock analysis pinpoints when each lock matters
(the paper's §VII future-work direction: feeding runtime mechanisms).

Run:  python examples/phase_analysis.py
"""

from repro import Program, analyze
from repro.core.eyerman import fit_model
from repro.core.lockorder import build_lock_order
from repro.core.windows import windowed_criticality


def build_two_phase_pipeline(nthreads: int = 8) -> Program:
    prog = Program(name="two-phase-pipeline", seed=0)
    ingest_lock = prog.mutex("ingest_lock")  # hot in phase 1
    publish_lock = prog.mutex("publish_lock")  # hot in phase 2
    meta_lock = prog.mutex("meta_lock")  # occasionally nested inside both
    phase_barrier = prog.barrier(nthreads, "phase_barrier")

    def worker(env, i):
        # Phase 1: ingest — serialized appends to a shared staging buffer.
        for _ in range(6):
            yield env.compute(0.05)
            yield env.acquire(ingest_lock)
            yield env.compute(0.04)
            if env.rng.random() < 0.3:  # nested metadata update
                yield env.acquire(meta_lock)
                yield env.compute(0.01)
                yield env.release(meta_lock)
            yield env.release(ingest_lock)
        yield env.barrier_wait(phase_barrier)
        # Phase 2: publish — a different lock becomes the bottleneck.
        for _ in range(6):
            yield env.compute(0.03)
            yield env.acquire(publish_lock)
            yield env.compute(0.06)
            yield env.release(publish_lock)

    prog.spawn_workers(nthreads, worker)
    return prog


def main() -> None:
    result = build_two_phase_pipeline().run()
    analysis = analyze(result.trace)

    print("=== whole-run ranking (hides the phase structure) ===")
    print(analysis.report.render_type1(3))
    print()

    print("=== windowed criticality (the phase switch is obvious) ===")
    wc = windowed_criticality(analysis, nwindows=8)
    print(wc.render())
    changes = wc.phase_changes()
    print(f"dominant-lock changes at window(s): {changes}")
    print()

    print("=== lock-order safety check ===")
    print(build_lock_order(result.trace).render())
    print()

    print("=== Eyerman-Eeckhout ceiling (paper ref [10]) ===")
    model = fit_model(analysis)
    print(model)
    for n in (8, 16, 32):
        print(f"  model speedup @{n} threads: {model.speedup(n):.2f}x")


if __name__ == "__main__":
    main()
