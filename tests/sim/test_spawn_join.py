"""Dynamic thread creation and joining."""

from repro.sim import Program
from repro.trace.events import EventType
from repro.trace.validate import validate_trace


def test_spawn_child_and_join():
    prog = Program()
    log = []

    def child(env, x):
        yield env.compute(2.0)
        log.append(("child", env.now))
        return x * 2

    def parent(env):
        yield env.compute(1.0)
        h = yield env.spawn(child, 21, name="kid")
        yield env.join(h)
        log.append(("joined", env.now))
        assert h.result == 42

    prog.spawn(parent)
    result = prog.run()
    assert ("child", 3.0) in log
    assert ("joined", 3.0) in log
    validate_trace(result.trace)


def test_join_already_exited_thread():
    prog = Program()

    def child(env):
        yield env.compute(1.0)

    def parent(env):
        h = yield env.spawn(child)
        yield env.compute(5.0)
        yield env.join(h)  # child long gone
        assert env.now == 5.0

    prog.spawn(parent)
    prog.run()


def test_join_all_helper():
    prog = Program()

    def child(env, d):
        yield env.compute(d)

    def parent(env):
        handles = []
        for d in (1.0, 3.0, 2.0):
            h = yield env.spawn(child, d)
            handles.append(h)
        yield from env.join_all(handles)
        assert env.now == 3.0

    prog.spawn(parent)
    prog.run()


def test_nested_spawning():
    prog = Program()
    depths = []

    def body(env, depth):
        depths.append(depth)
        yield env.compute(1.0)
        if depth < 3:
            h = yield env.spawn(body, depth + 1)
            yield env.join(h)

    prog.spawn(body, 0)
    result = prog.run()
    assert sorted(depths) == [0, 1, 2, 3]
    assert result.completion_time == 4.0
    assert result.trace.count(EventType.THREAD_CREATE) == 3
    validate_trace(result.trace)


def test_create_events_reference_children():
    prog = Program()

    def child(env):
        yield env.compute(1.0)

    def parent(env):
        h = yield env.spawn(child, name="c")
        yield env.join(h)

    prog.spawn(parent)
    trace = prog.run().trace
    create = next(ev for ev in trace if ev.etype == EventType.THREAD_CREATE)
    child_start = next(
        ev for ev in trace if ev.etype == EventType.THREAD_START and ev.tid == create.arg
    )
    assert child_start.time == create.time


def test_multiple_joiners_woken():
    prog = Program()
    woke = []

    def target(env):
        yield env.compute(2.0)

    def make_waiter(handle):
        def waiter(env, i):
            yield env.join(handle)
            woke.append((i, env.now))

        return waiter

    h = prog.spawn(target)
    # Root threads can join another root thread's handle.
    def waiter(env, i):
        yield env.join(h)
        woke.append((i, env.now))

    prog.spawn_workers(3, waiter)
    prog.run()
    assert sorted(woke) == [(0, 2.0), (1, 2.0), (2, 2.0)]


def test_thread_handle_properties():
    prog = Program()

    def child(env):
        yield env.compute(1.0)
        return "ok"

    h = prog.spawn(child, name="worker")
    assert h.name == "worker"
    assert not h.done
    prog.run()
    assert h.done
    assert h.result == "ok"
