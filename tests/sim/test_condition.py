"""Condition variable semantics: wait/signal/broadcast, mutex interplay."""

import pytest

from repro.errors import DeadlockError, SyncUsageError
from repro.sim import Program
from repro.trace.events import EventType


def producer_consumer_program(nconsumers=1, nsignals=None):
    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")
    box = {"items": 0}
    consumed = []

    def consumer(env, i):
        yield env.acquire(lock)
        while box["items"] == 0:
            yield env.cond_wait(cv, lock)
        box["items"] -= 1
        consumed.append((i, env.now))
        yield env.release(lock)

    def producer(env):
        for _ in range(nsignals if nsignals is not None else nconsumers):
            yield env.compute(1.0)
            yield env.acquire(lock)
            box["items"] += 1
            yield env.cond_signal(cv)
            yield env.release(lock)

    prog.spawn_workers(nconsumers, consumer, name_prefix="cons")
    prog.spawn(producer, name="prod")
    return prog, consumed


def test_signal_wakes_one_waiter():
    prog, consumed = producer_consumer_program(nconsumers=1)
    prog.run()
    assert len(consumed) == 1
    assert consumed[0][1] == 1.0


def test_signals_wake_in_fifo_order():
    prog, consumed = producer_consumer_program(nconsumers=3, nsignals=3)
    prog.run()
    assert [c[0] for c in consumed] == [0, 1, 2]
    assert [c[1] for c in consumed] == [1.0, 2.0, 3.0]


def test_broadcast_wakes_all():
    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")
    state = {"go": False}
    woken = []

    def waiter(env, i):
        yield env.acquire(lock)
        while not state["go"]:
            yield env.cond_wait(cv, lock)
        woken.append(i)
        yield env.release(lock)

    def broadcaster(env):
        yield env.compute(2.0)
        yield env.acquire(lock)
        state["go"] = True
        n = yield env.cond_broadcast(cv)
        assert n == 3
        yield env.release(lock)

    prog.spawn_workers(3, waiter)
    prog.spawn(broadcaster)
    prog.run()
    assert sorted(woken) == [0, 1, 2]


def test_signal_with_no_waiters_returns_zero():
    prog = Program()
    cv = prog.condition("cv")

    def body(env):
        n = yield env.cond_signal(cv)
        assert n == 0

    prog.spawn(body)
    prog.run()


def test_woken_threads_serialize_on_mutex():
    # After a broadcast, waiters must reacquire the mutex one at a time.
    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")
    state = {"go": False}
    times = []

    def waiter(env, i):
        yield env.acquire(lock)
        while not state["go"]:
            yield env.cond_wait(cv, lock)
        yield env.compute(1.0)  # hold the mutex for 1.0 after waking
        times.append(env.now)
        yield env.release(lock)

    def broadcaster(env):
        yield env.compute(1.0)
        yield env.acquire(lock)
        state["go"] = True
        yield env.cond_broadcast(cv)
        yield env.release(lock)

    prog.spawn_workers(3, waiter)
    prog.spawn(broadcaster)
    prog.run()
    assert sorted(times) == [2.0, 3.0, 4.0]


def test_cond_wait_without_mutex_rejected():
    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")

    def body(env):
        yield env.cond_wait(cv, lock)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="without holding"):
        prog.run()


def test_waiter_without_signal_deadlocks():
    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")

    def body(env):
        yield env.acquire(lock)
        yield env.cond_wait(cv, lock)

    prog.spawn(body)
    with pytest.raises(DeadlockError):
        prog.run()


def test_cond_event_schema():
    prog, _ = producer_consumer_program(nconsumers=1)
    trace = prog.run().trace
    assert trace.count(EventType.COND_BLOCK) == 1
    assert trace.count(EventType.COND_WAKE) == 1
    assert trace.count(EventType.COND_SIGNAL) == 1
    wake = next(ev for ev in trace if ev.etype == EventType.COND_WAKE)
    prod_tid = next(
        tid for tid, name in trace.threads.items() if name == "prod"
    )
    assert wake.arg == prod_tid


def test_cond_wait_releases_mutex():
    # While the consumer waits, another thread can take the mutex.
    prog = Program()
    lock = prog.mutex("m")
    cv = prog.condition("cv")
    got_lock_at = []

    def waiter(env):
        yield env.acquire(lock)
        yield env.cond_wait(cv, lock)
        yield env.release(lock)

    def interloper(env):
        yield env.compute(1.0)
        yield env.acquire(lock)
        got_lock_at.append(env.now)
        yield env.compute(1.0)
        yield env.cond_signal(cv)
        yield env.release(lock)

    prog.spawn(waiter)
    prog.spawn(interloper)
    prog.run()
    assert got_lock_at == [1.0]
