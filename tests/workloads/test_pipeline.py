"""Pipeline workload: structure and condvar-heavy analysis coverage."""

import pytest

from repro.core.analyzer import analyze
from repro.core.model import WaitKind
from repro.trace.validate import validate_trace
from repro.workloads import Pipeline


@pytest.fixture(scope="module")
def run8():
    return Pipeline(items=60).run(nthreads=8, seed=3)


def test_valid(run8):
    validate_trace(run8.trace)


def test_stage_split():
    wl = Pipeline()
    assert wl.stage_split(8) == (2, 4, 2)
    assert sum(wl.stage_split(3)) == 3
    assert all(x >= 1 for x in wl.stage_split(3))


def test_cond_waits_analyzed(run8):
    analysis = analyze(run8.trace)
    # Channel getters/putters block on the condition variables...
    cond_waits = [
        w
        for tl in analysis.timelines.values()
        for w in tl.waits
        if w.kind == WaitKind.CONDITION
    ]
    assert cond_waits
    # ...and the walk stays exact through signal/reacquire chains.  (The
    # junction itself is attributed to the channel mutex: the woken thread's
    # last delay is the reacquisition, because the signaller holds the lock
    # while signalling — correct per the paper's waker rules.)
    assert analysis.critical_path.coverage_error == pytest.approx(0.0, abs=1e-9)


def test_bottleneck_stage_lock_ranked_first(run8):
    # transform is the slow stage; its input/output channel locks matter.
    analysis = analyze(run8.trace)
    top = analysis.report.top_locks(1)[0]
    assert top.name in ("stage1.lock", "stage2.lock")


def test_all_items_flow_through(run8):
    analysis = analyze(run8.trace)
    s1 = analysis.report.lock("stage1.lock")
    # At least one put and one get per item pass through stage1's mutex.
    assert s1.total_invocations >= 2 * 60


def test_fewer_transformers_slower():
    fast = Pipeline(items=60).run(nthreads=8, seed=3).completion_time
    slow = Pipeline(items=60).run(nthreads=3, seed=3).completion_time
    assert slow > fast
