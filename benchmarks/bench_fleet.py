"""Fleet aggregation: throughput and regression-detection quality.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick
    PYTHONPATH=src python benchmarks/bench_fleet.py --json BENCH_FLEET.json

Two claims are measured and asserted (docs/fleet.md, EXPERIMENTS.md):

* **Aggregation throughput** — folding stored analysis reports into
  :class:`repro.fleet.FleetAggregator` sustains at least
  ``--min-throughput`` observations/s (default 200/s) over >= 1k
  synthetic reports, and a fleet-wide summary + regression sweep over
  the resulting state stays interactive (recorded, not asserted).
* **Regression detection quality** — with per-run gaussian noise
  (sigma 0.01) on every lock's cp_fraction, seeding a 0.2 cp_fraction
  shift into the latest run of a subset of workloads is detected with
  precision and recall >= ``--min-precision`` / ``--min-recall``
  (default 0.9 each): the calibrated noise band flags the shifted
  workloads and stays silent on the rest.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.fleet import FleetAggregator

#: Injected cp_fraction shift (moved from the top lock to the second).
SHIFT = 0.2
#: Per-run gaussian noise on each lock's cp_fraction.
NOISE_SIGMA = 0.01


def synth_report(locks: dict[str, float], workload: str) -> dict:
    return {
        "name": workload,
        "nthreads": 8,
        "duration": 10.0,
        "locks": {
            name: {
                "cp_time_frac": max(0.0, cp),
                "cont_prob_on_cp": min(1.0, max(0.0, cp) + 0.1),
                "wait_time_frac": max(0.0, cp) / 2,
            }
            for name, cp in locks.items()
        },
    }


def make_fleet(
    workloads: int, runs: int, shifted: int, seed: int = 7
) -> tuple[list[tuple[str, str, dict]], set[str]]:
    """Synthesize (digest, workload, report) rows + the shifted workload set.

    Each workload gets 4 locks whose base cp_fractions are separated by
    >= 0.05 so only the *injected* shift should cross the noise band.
    """
    rng = random.Random(seed)
    rows: list[tuple[str, str, dict]] = []
    shifted_set = set()
    for w in range(workloads):
        workload = f"wl-{w:03d}"
        top = 0.45 + rng.random() * 0.2  # 0.45..0.65
        base = {
            f"pool[{w}].hot#1": top,
            "index_lock": top - 0.15,
            "log_lock": top - 0.25,
            "stats_lock": top - 0.35,
        }
        inject = w < shifted
        if inject:
            shifted_set.add(workload)
        for r in range(runs):
            locks = {
                name: cp + rng.gauss(0.0, NOISE_SIGMA)
                for name, cp in base.items()
            }
            if inject and r == runs - 1:  # the latest run regressed
                locks[f"pool[{w}].hot#1"] -= SHIFT
                locks["index_lock"] += SHIFT
            rows.append(
                (f"{workload}-run-{r}", workload, synth_report(locks, workload))
            )
    return rows, shifted_set


def bench_aggregation(state_dir: Path, rows) -> dict:
    agg = FleetAggregator(state_dir)
    t0 = time.perf_counter()
    for digest, workload, report in rows:
        agg.observe(report, digest=digest, workload=workload, save=False)
    t_observe = time.perf_counter() - t0
    agg.save()

    t0 = time.perf_counter()
    summary = agg.summary(top=20)
    t_summary = time.perf_counter() - t0
    t0 = time.perf_counter()
    regressions = agg.regressions()
    t_regressions = time.perf_counter() - t0
    t0 = time.perf_counter()
    FleetAggregator(state_dir)  # cold reload of the persisted state
    t_reload = time.perf_counter() - t0
    return {
        "reports": len(rows),
        "observe_s": round(t_observe, 4),
        "throughput_per_s": len(rows) / t_observe if t_observe else float("inf"),
        "summary_s": round(t_summary, 4),
        "regressions_s": round(t_regressions, 4),
        "state_reload_s": round(t_reload, 4),
        "state_bytes": (state_dir / "fleet.json").stat().st_size,
        "clusters": summary["clusters"],
        "agg": agg,
        "regressions": regressions,
    }


def score_detection(regressions: dict, shifted: set[str]) -> dict:
    flagged = {
        f["workload"] for f in regressions["flags"] if f["kind"] == "cp_shift"
    }
    tp = len(flagged & shifted)
    precision = tp / len(flagged) if flagged else 1.0
    recall = tp / len(shifted) if shifted else 1.0
    return {
        "seeded_shifts": sorted(shifted),
        "flagged": sorted(flagged),
        "true_positives": tp,
        "false_positives": len(flagged - shifted),
        "false_negatives": len(shifted - flagged),
        "precision": precision,
        "recall": recall,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller fleet (CI smoke: 8 workloads x 25 runs)")
    ap.add_argument("--workloads", type=int, default=25)
    ap.add_argument("--runs", type=int, default=60, help="runs per workload")
    ap.add_argument("--shifted", type=int, default=8,
                    help="workloads given an injected cp_fraction shift")
    ap.add_argument("--min-throughput", type=float, default=200.0,
                    help="observations/s floor (default %(default)s)")
    ap.add_argument("--min-precision", type=float, default=0.9)
    ap.add_argument("--min-recall", type=float, default=0.9)
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the numbers as JSON (perf trajectory)")
    args = ap.parse_args(argv)

    workloads = 8 if args.quick else args.workloads
    runs = 25 if args.quick else args.runs
    shifted = min(3 if args.quick else args.shifted, workloads)
    rows, shifted_set = make_fleet(workloads, runs, shifted)
    failed = False

    with tempfile.TemporaryDirectory() as tmp:
        agg_stats = bench_aggregation(Path(tmp) / "fleet", rows)
    regressions = agg_stats.pop("regressions")
    agg_stats.pop("agg")
    print(
        f"aggregated {agg_stats['reports']} reports over {workloads} "
        f"workload(s): {agg_stats['throughput_per_s']:.0f} obs/s "
        f"({agg_stats['observe_s']:.2f}s), summary {agg_stats['summary_s']*1e3:.1f}ms, "
        f"regression sweep {agg_stats['regressions_s']*1e3:.1f}ms, "
        f"state reload {agg_stats['state_reload_s']*1e3:.1f}ms "
        f"({agg_stats['state_bytes']} bytes, {agg_stats['clusters']} clusters)"
    )
    if agg_stats["throughput_per_s"] < args.min_throughput:
        print(
            f"FAIL: aggregation throughput {agg_stats['throughput_per_s']:.0f}/s "
            f"below the {args.min_throughput:g}/s floor", file=sys.stderr,
        )
        failed = True

    quality = score_detection(regressions, shifted_set)
    print(
        f"seeded {len(shifted_set)} cp_fraction shift(s) of {SHIFT:g} under "
        f"sigma-{NOISE_SIGMA:g} noise: precision {quality['precision']:.2f}, "
        f"recall {quality['recall']:.2f} "
        f"({quality['false_positives']} FP, {quality['false_negatives']} FN)"
    )
    if quality["precision"] < args.min_precision:
        print(
            f"FAIL: precision {quality['precision']:.2f} below "
            f"{args.min_precision:g} (false positives on: "
            f"{sorted(set(quality['flagged']) - shifted_set)})", file=sys.stderr,
        )
        failed = True
    if quality["recall"] < args.min_recall:
        print(
            f"FAIL: recall {quality['recall']:.2f} below {args.min_recall:g} "
            f"(missed: {sorted(shifted_set - set(quality['flagged']))})",
            file=sys.stderr,
        )
        failed = True

    if args.json:
        with open(args.json, "w") as f:
            json.dump(
                {"bench": "fleet", "quick": args.quick,
                 "aggregation": agg_stats, "detection": quality},
                f, indent=2,
            )
            f.write("\n")
        print(f"\nnumbers written to {args.json}")

    if failed:
        return 1
    print(
        f"\nok: >={args.min_throughput:g} obs/s aggregation, shift detection "
        f"precision/recall >= {args.min_precision:g}/{args.min_recall:g}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
