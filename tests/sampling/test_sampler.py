"""Sampler invariants: unit integrity, determinism, rate edge cases.

The contract under test (see ``docs/sampling.md``): hash-Bernoulli
sampling of whole lock-invocation units, identical decisions from the
streaming scalar sampler and the vectorized ``downsample_trace``,
byte-identical records at rate 1.0, and blocking-chain events immune to
sampling at every rate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.sampling import (
    EventSampler,
    downsample_trace,
    sample_mask,
    trace_sample_rate,
    unit_hash,
)
from repro.sampling.sampler import _hash_events, _unit_columns
from repro.trace.events import EventType
from repro.trace.transform import demote_orphan_contention
from repro.trace.validate import validate_trace
from repro.workloads import get_workload

from tests.core.test_properties import program_st, run_random_program

_LOCK_VERBS = (EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE)

rate_st = st.sampled_from([0.0, 0.1, 0.3, 0.5, 0.9, 1.0])
seed_st = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(scope="module")
def radiosity_trace():
    return (
        get_workload("radiosity")(total_tasks=40, iterations=2)
        .run(nthreads=4, seed=11)
        .trace
    )


def lock_objs(trace):
    return {info.obj for info in trace.objects.values() if info.kind.is_lock_like}


def unit_ids(trace):
    """(row -> unit key) for every lock-verb record, from the scalar walk."""
    depth: dict[tuple[int, int], int] = {}
    counter: dict[tuple[int, int], int] = {}
    objs = lock_objs(trace)
    out = {}
    for i, rec in enumerate(trace.records):
        et, tid, obj = int(rec["etype"]), int(rec["tid"]), int(rec["obj"])
        if et not in (
            int(EventType.ACQUIRE),
            int(EventType.OBTAIN),
            int(EventType.RELEASE),
        ) or obj not in objs:
            continue
        key = (tid, obj)
        if et == int(EventType.ACQUIRE):
            if depth.get(key, 0) == 0:
                counter[key] = counter.get(key, 0) + 1
            depth[key] = depth.get(key, 0) + 1
        k = counter.get(key, 0)
        out[i] = (tid, obj, k)
        if et == int(EventType.RELEASE):
            depth[key] = depth.get(key, 0) - 1
    return out


# -- hash agreement ---------------------------------------------------------


def test_vectorized_hash_matches_scalar_reference(radiosity_trace):
    trace = radiosity_trace
    records = trace.records
    is_unit = np.isin(records["etype"], [int(e) for e in _LOCK_VERBS])
    is_unit &= np.isin(
        records["obj"], np.fromiter(lock_objs(trace), dtype=np.int64)
    )
    idx = np.flatnonzero(is_unit)
    k, _ = _unit_columns(records, is_unit)
    vec = _hash_events(records, idx, k, seed=42)
    ids = unit_ids(trace)
    for j, row in enumerate(idx):
        tid, obj, kk = ids[int(row)]
        assert int(vec[j]) == unit_hash(42, tid, obj, kk)


def test_unit_counter_increments_at_outermost_acquire(radiosity_trace):
    """k must be assigned at ACQUIRE (depth 0) and shared by the whole
    bracket — the regression the multi-group seg_cumsum bug caused."""
    trace = radiosity_trace
    records = trace.records
    is_unit = np.isin(records["etype"], [int(e) for e in _LOCK_VERBS])
    is_unit &= np.isin(
        records["obj"], np.fromiter(lock_objs(trace), dtype=np.int64)
    )
    idx = np.flatnonzero(is_unit)
    k, _ = _unit_columns(records, is_unit)
    ids = unit_ids(trace)
    for j, row in enumerate(idx):
        assert int(k[j]) == ids[int(row)][2]


# -- rate edge cases --------------------------------------------------------


def test_rate_one_is_byte_identical(radiosity_trace):
    sampled = downsample_trace(radiosity_trace, 1.0, seed=5)
    assert sampled.records.tobytes() == radiosity_trace.records.tobytes()
    assert trace_sample_rate(sampled) == 1.0
    assert trace_sample_rate(radiosity_trace) is None


def test_rate_zero_keeps_exactly_the_blocking_chain(radiosity_trace):
    sampled = downsample_trace(radiosity_trace, 0.0, seed=5)
    objs = lock_objs(radiosity_trace)
    kept_lock_verbs = [
        rec
        for rec in sampled.records
        if int(rec["etype"])
        in (int(EventType.ACQUIRE), int(EventType.OBTAIN), int(EventType.RELEASE))
        and int(rec["obj"]) in objs
    ]
    # rate 0: no unit wins the toss, no contended OBTAIN survives to
    # retain a waker -> no lock verbs at all.
    assert kept_lock_verbs == []
    # Everything else (lifecycle, barriers, condition variables) survives.
    non_lock = [
        rec
        for rec in radiosity_trace.records
        if not (
            int(rec["etype"])
            in (int(EventType.ACQUIRE), int(EventType.OBTAIN), int(EventType.RELEASE))
            and int(rec["obj"]) in objs
        )
    ]
    assert len(sampled.records) == len(non_lock)


def test_invalid_rate_rejected(radiosity_trace):
    with pytest.raises(TraceError):
        downsample_trace(radiosity_trace, 1.5)
    with pytest.raises(TraceError):
        downsample_trace(radiosity_trace, -0.1)


def test_double_downsampling_rejected(radiosity_trace):
    sampled = downsample_trace(radiosity_trace, 0.5, seed=1)
    with pytest.raises(TraceError, match="already sampled"):
        downsample_trace(sampled, 0.5, seed=1)


# -- property tests over random programs ------------------------------------


@settings(max_examples=25, deadline=None)
@given(program_st, rate_st, st.integers(min_value=0, max_value=10_000))
def test_mask_is_constant_per_unit_and_never_orphans(spec, rate, seed):
    """Within one invocation unit the keep-mask is constant, so a sampled
    trace can never contain a RELEASE without its ACQUIRE/OBTAIN."""
    trace = run_random_program(spec).trace
    mask = sample_mask(trace.records, lock_objs(trace), rate, seed)
    ids = unit_ids(trace)
    per_unit: dict[tuple, set] = {}
    for row, key in ids.items():
        per_unit.setdefault(key, set()).add(bool(mask[row]))
    for key, decisions in per_unit.items():
        assert len(decisions) == 1, f"unit {key} partially sampled"


@settings(max_examples=25, deadline=None)
@given(program_st, rate_st, st.integers(min_value=0, max_value=10_000))
def test_sampled_traces_validate_and_analyze(spec, rate, seed):
    trace = run_random_program(spec).trace
    sampled = downsample_trace(trace, rate, seed)
    repaired, _ = demote_orphan_contention(sampled)
    validate_trace(repaired)


@settings(max_examples=15, deadline=None)
@given(program_st, st.sampled_from([0.0, 0.25, 0.5, 1.0]), seed_st)
def test_sampling_is_deterministic(spec, rate, seed):
    trace = run_random_program(spec).trace
    a = downsample_trace(trace, rate, seed)
    b = downsample_trace(trace, rate, seed)
    assert a.records.tobytes() == b.records.tobytes()


@settings(max_examples=15, deadline=None)
@given(program_st, st.sampled_from([0.1, 0.3, 0.5]), st.integers(0, 100))
def test_streaming_sampler_matches_vectorized(spec, rate, seed):
    """EventSampler.process over the event stream selects exactly the
    events ``sample_mask`` selects (waker retention included)."""
    trace = run_random_program(spec).trace
    mask = sample_mask(trace.records, lock_objs(trace), rate, seed)
    objs = lock_objs(trace)
    sampler = EventSampler(rate, seed)
    kept = []
    for ev in trace:
        if (
            ev.etype in (EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE)
            and ev.obj in objs
        ):
            kept.extend(sampler.process(ev))
        else:
            kept.append(ev)
    streamed = sorted(ev.seq for ev in kept)
    vectorized = sorted(int(s) for s in trace.records["seq"][mask])
    assert streamed == vectorized


def test_streaming_sampler_meta():
    sampler = EventSampler(0.25, seed=9)
    assert sampler.meta() == {"strategy": "unit-hash", "rate": 0.25, "seed": 9}
