"""Result cache: LRU semantics, disk spill, stats."""

import pytest

from repro.errors import ServiceError
from repro.service.cache import ResultCache


def test_put_get_roundtrip():
    cache = ResultCache(capacity=4)
    cache.put("k1", {"x": 1})
    assert cache.get("k1") == {"x": 1}
    assert cache.get("missing") is None


def test_hit_miss_counters():
    cache = ResultCache(capacity=4)
    cache.put("k", {"v": 0})
    cache.get("k")
    cache.get("k")
    cache.get("nope")
    stats = cache.stats()
    assert stats["hits"] == 2
    assert stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(2 / 3)


def test_lru_eviction_order():
    cache = ResultCache(capacity=2)
    cache.put("a", {"n": 1})
    cache.put("b", {"n": 2})
    cache.get("a")  # 'a' is now most recently used
    cache.put("c", {"n": 3})  # evicts 'b'
    assert len(cache) == 2
    assert cache.get("a") == {"n": 1}
    assert cache.get("b") is None  # no disk tier: gone
    assert cache.stats()["evictions"] == 1


def test_disk_spill_and_promote(tmp_path):
    cache = ResultCache(capacity=1, disk_dir=tmp_path)
    cache.put("a", {"n": 1})
    cache.put("b", {"n": 2})  # evicts 'a' to disk
    assert (tmp_path / "a.json").exists()
    assert cache.get("a") == {"n": 1}  # disk hit, promoted back
    stats = cache.stats()
    assert stats["disk_hits"] == 1
    assert stats["hits"] == 1


def test_disk_capacity_bound(tmp_path):
    cache = ResultCache(capacity=1, disk_dir=tmp_path, disk_capacity=2)
    for i in range(6):
        cache.put(f"k{i}", {"n": i})
    assert len(list(tmp_path.glob("*.json"))) <= 2
    assert cache.stats()["disk_entries"] <= 2


def test_disk_trim_drops_oldest_spill_first(tmp_path):
    cache = ResultCache(capacity=1, disk_dir=tmp_path, disk_capacity=2)
    for key in ("a", "b", "c", "d"):
        cache.put(key, {"k": key})
    # memory holds 'd'; spills were a, b, c — the 2-entry tier keeps the
    # two newest spills and dropped 'a' first.
    assert sorted(p.stem for p in tmp_path.glob("*.json")) == ["b", "c"]


def test_trim_order_seeded_from_existing_tier(tmp_path):
    first = ResultCache(capacity=1, disk_dir=tmp_path, disk_capacity=3)
    for key in ("a", "b", "c", "d"):  # spills a, b, c (d stays in memory)
        first.put(key, {"k": key})
    # A fresh cache over the same directory inherits the tier and its
    # oldest-first trim order: the next spill evicts 'a'.
    second = ResultCache(capacity=1, disk_dir=tmp_path, disk_capacity=3)
    assert second.stats()["disk_entries"] == 3
    second.put("e", {"k": "e"})
    second.put("f", {"k": "f"})  # evicts 'e' from memory -> tier trims 'a'
    assert not (tmp_path / "a.json").exists()
    assert second.get("b") == {"k": "b"}


def test_torn_disk_entry_reads_as_miss(tmp_path):
    cache = ResultCache(capacity=1, disk_dir=tmp_path)
    (tmp_path / "bad.json").write_text("{truncated")
    assert cache.get("bad") is None


def test_invalid_capacity_rejected():
    with pytest.raises(ServiceError, match="capacity"):
        ResultCache(capacity=0)
