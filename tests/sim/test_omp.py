"""OpenMP-style layer on the simulator."""

import pytest

from repro.core.analyzer import analyze
from repro.errors import WorkloadError
from repro.sim import Program
from repro.sim.omp import OpenMP
from repro.trace.validate import validate_trace


def run_region(schedule, nthreads=4, nitems=32, chunk=2, cost=0.1):
    prog = Program(seed=0)
    omp = OpenMP(prog, nthreads=nthreads)
    done = []

    def body(env, item, ctx):
        yield env.compute(cost)
        done.append(item)

    omp.parallel_for(range(nitems), body, schedule=schedule, chunk=chunk)
    result = prog.run()
    return result, done


@pytest.mark.parametrize("schedule", ["static", "dynamic"])
def test_all_items_processed(schedule):
    result, done = run_region(schedule)
    assert sorted(done) == list(range(32))
    validate_trace(result.trace)


def test_static_perfect_balance():
    result, _ = run_region("static", nthreads=4, nitems=32, cost=0.1)
    # 8 items each, no synchronization: exactly 0.8.
    assert result.completion_time == pytest.approx(0.8)


def test_dynamic_schedule_lock_traced():
    result, _ = run_region("dynamic", nthreads=4, nitems=32, chunk=4)
    analysis = analyze(result.trace)
    sched = next(
        m for m in analysis.report.locks.values() if "schedule_lock" in m.name
    )
    # 8 chunk grabs + 4 empty probes.
    assert sched.total_invocations == 12


def test_dynamic_balances_skewed_work():
    def run(schedule):
        prog = Program(seed=0)
        omp = OpenMP(prog, nthreads=4)

        def body(env, item, ctx):
            # Heavy items land on one thread's round-robin share under
            # static scheduling; dynamic spreads them.
            yield env.compute(1.0 if item % 4 == 0 else 0.01)

        omp.parallel_for(range(32), body, schedule=schedule, chunk=1,
                         schedule_cost=0.001)
        return prog.run().completion_time

    assert run("dynamic") < run("static")


def test_critical_section():
    prog = Program(seed=0)
    omp = OpenMP(prog, nthreads=4)
    totals = []

    def body(env, item, ctx):
        yield env.compute(0.05)
        yield from ctx.critical(env, "update", lambda: totals.append(item), cost=0.02)

    omp.parallel_for(range(16), body, schedule="dynamic", chunk=2)
    result = prog.run()
    assert sorted(totals) == list(range(16))
    analysis = analyze(result.trace)
    crit = analysis.report.lock("omp_critical:update")
    assert crit.total_invocations == 16


def test_named_criticals_are_distinct_locks():
    prog = Program(seed=0)
    omp = OpenMP(prog, nthreads=2)

    def body(env, item, ctx):
        yield from ctx.critical(env, "x", cost=0.01)
        yield from ctx.critical(env, "y", cost=0.01)

    omp.parallel_for(range(4), body)
    trace = prog.run().trace
    names = {info.name for info in trace.locks}
    assert "omp_critical:x" in names and "omp_critical:y" in names


def test_invalid_parameters():
    prog = Program()
    with pytest.raises(WorkloadError, match="nthreads"):
        OpenMP(prog, nthreads=0)
    omp = OpenMP(prog, nthreads=2)
    with pytest.raises(WorkloadError, match="schedule"):
        omp.parallel_for(range(4), lambda env, i, ctx: None, schedule="guided")
    with pytest.raises(WorkloadError, match="chunk"):
        omp.parallel_for(range(4), lambda env, i, ctx: None, chunk=0)


def test_plain_function_body_allowed():
    prog = Program(seed=0)
    omp = OpenMP(prog, nthreads=2)
    seen = []
    omp.parallel_for(range(6), lambda env, item, ctx: seen.append(item))
    prog.run()
    assert sorted(seen) == list(range(6))
