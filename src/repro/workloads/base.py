"""Workload abstraction and registry."""

from __future__ import annotations

import abc
from typing import Any, ClassVar

from repro.errors import WorkloadError
from repro.sim.engine import SimResult
from repro.sim.program import Program

__all__ = ["Workload", "register", "get_workload", "available_workloads"]

_REGISTRY: dict[str, type["Workload"]] = {}


def register(cls: type["Workload"]) -> type["Workload"]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise WorkloadError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str) -> type["Workload"]:
    """Look up a workload class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_workloads() -> list[str]:
    """Sorted names of every registered workload."""
    return sorted(_REGISTRY)


class Workload(abc.ABC):
    """A simulated multithreaded application.

    Subclasses set :attr:`name`, accept tuning parameters in ``__init__``
    and implement :meth:`build`, which wires the program's threads and
    synchronization objects into a fresh :class:`Program`.
    """

    #: Registry name (e.g. ``"radiosity"``).
    name: ClassVar[str] = ""

    def describe(self) -> dict[str, Any]:
        """Parameters recorded into the trace metadata."""
        return {
            k: v
            for k, v in vars(self).items()
            if not k.startswith("_") and isinstance(v, (int, float, str, bool))
        }

    @abc.abstractmethod
    def build(self, prog: Program, nthreads: int) -> None:
        """Create locks and spawn the workload's threads into ``prog``."""

    def run(
        self,
        nthreads: int,
        seed: int = 0,
        cores: int | None = None,
        protocol: Any = None,
        scheduler: Any = None,
    ) -> SimResult:
        """Build and execute the workload; returns the traced result.

        ``protocol``/``scheduler`` select non-default lock and ready-queue
        policies (names or instances, see :mod:`repro.sim.protocols` and
        :mod:`repro.sim.schedulers`) — used by the protocol benchmarks to
        measure policies directly rather than through replay.
        """
        if nthreads < 1:
            raise WorkloadError(f"nthreads must be >= 1, got {nthreads}")
        prog = Program(
            cores=cores, seed=seed, name=self.name,
            protocol=protocol, scheduler=scheduler,
        )
        self.build(prog, nthreads)
        meta = {"workload": self.name, "params": self.describe()}
        return prog.run(meta=meta)
