"""Consistent-hash job routing for a fleet of service instances.

With a shared object backend the *data* is location-independent:
traces and cached results live in one namespace every instance can
read.  What still wants an owner is the *work*: two instances that
both compute (and separately memory-cache) the same job waste CPU and
halve the in-memory hit rate.  A :class:`HashRing` gives every cache
key exactly one owning node, and non-owners answer job submissions
with a 307 redirect the :class:`~repro.service.client.ServiceClient`
follows transparently.

Classic Karger ring: each node is hashed onto the circle at
``replicas`` pseudo-random points (sha256 of ``"<node>#<i>"``), a key
is owned by the first node point clockwise of the key's hash.  Adding
or removing one node therefore only moves ~1/N of the keyspace —
resizing a fleet does not stampede the shared cache.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterable

from repro.errors import ServiceError

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """A stable 64-bit position on the circle for one label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Maps keys to owning nodes; stable under fleet resizes."""

    def __init__(self, nodes: Iterable[str], replicas: int = 64):
        self.nodes = sorted(set(nodes))
        if not self.nodes:
            raise ServiceError("hash ring needs at least one node")
        if replicas < 1:
            raise ServiceError(f"ring replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for i in range(replicas):
                points.append((_point(f"{node}#{i}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        idx = bisect.bisect_right(self._points, _point(key))
        if idx == len(self._points):
            idx = 0  # wrap around the circle
        return self._owners[idx]

    def preference(self, key: str, n: int = 2) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise of ``key`` — the
        owner first, then the natural failover order."""
        idx = bisect.bisect_right(self._points, _point(key))
        out: list[str] = []
        for step in range(len(self._points)):
            node = self._owners[(idx + step) % len(self._points)]
            if node not in out:
                out.append(node)
                if len(out) >= min(n, len(self.nodes)):
                    break
        return out

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def to_dict(self) -> dict[str, Any]:
        return {"nodes": self.nodes, "replicas": self.replicas}
