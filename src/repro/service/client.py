"""HTTP client for the analysis service (urllib only, no dependencies).

Used by the end-to-end tests, ``examples/service_client.py`` and any
script that wants remote analysis with local-call ergonomics::

    client = ServiceClient("http://127.0.0.1:8323")
    digest = client.upload_trace("rad.clt")
    report = client.analyze(digest)
    print(report["critical_locks"][0])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

from repro.errors import ServiceError
from repro.trace.framing import encode_records_frame, split_records
from repro.trace.trace import Trace
from repro.trace.writer import header_dict, write_trace

__all__ = ["ServiceClient"]

_TERMINAL = ("done", "failed")


class ServiceClient:
    """Thin JSON-over-HTTP wrapper around the service endpoints.

    Ring-aware: when a node answers a job submission with a 307 (another
    node owns that cache key), the client re-issues the request to the
    owning node and pins the returned job id there, so subsequent
    ``job()``/``report()``/``wait()`` polls hit the node that actually
    runs the job.
    """

    #: Redirect hops tolerated before declaring the ring misconfigured.
    MAX_REDIRECTS = 4

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._job_nodes: dict[str, str] = {}  # job id -> owning node URL
        self._served_by = self.base_url  # node that answered the last request

    # -- transport ----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: bytes | None = None,
        content_type: str = "application/json", base: str | None = None,
    ) -> dict[str, Any]:
        url = f"{base or self.base_url}{path}"
        for _hop in range(self.MAX_REDIRECTS + 1):
            req = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers={"Content-Type": content_type} if body is not None else {},
            )
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                    self._served_by = url[: -len(path)] if path else url
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                try:
                    detail = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    detail = {"error": str(exc.reason)}
                if exc.code in (307, 308):
                    target = detail.get("redirect") or exc.headers.get("Location")
                    if target:
                        url = target
                        continue
                raise ServiceError(
                    f"{method} {path} -> HTTP {exc.code}: "
                    f"{detail.get('error', '')}", status=exc.code
                ) from exc
            except urllib.error.URLError as exc:
                raise ServiceError(
                    f"cannot reach service at {url}: {exc.reason}", status=503
                ) from exc
        raise ServiceError(
            f"{method} {path}: redirect loop after {self.MAX_REDIRECTS} hops",
            status=508,
        )

    def _get(self, path: str) -> dict[str, Any]:
        return self._request("GET", path)

    def _post_json(self, path: str, payload: dict) -> dict[str, Any]:
        return self._request("POST", path, json.dumps(payload).encode("utf-8"))

    def _job_base(self, job_id: str) -> str | None:
        return self._job_nodes.get(job_id)

    # -- traces -------------------------------------------------------------

    def upload_trace(self, trace: Trace | str | Path, name: str | None = None) -> str:
        """Upload a trace (object or file path); returns its content digest."""
        if isinstance(trace, Trace):
            import tempfile

            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "upload.clt"
                write_trace(trace, path)
                data = path.read_bytes()
        else:
            data = Path(trace).read_bytes()
            if name is None:
                name = Path(trace).stem
        suffix = f"?name={name}" if name else ""
        entry = self._request(
            "POST", f"/traces{suffix}", data, content_type="application/octet-stream"
        )
        return entry["digest"]

    def traces(self) -> list[dict[str, Any]]:
        return self._get("/traces")["traces"]

    def trace(self, digest: str) -> dict[str, Any]:
        """Index entry for one stored trace (404 if unknown)."""
        return self._get(f"/traces/{digest}")

    # -- jobs ---------------------------------------------------------------

    def submit(
        self, kind: str, traces: list[str] | str, params: dict | None = None
    ) -> str:
        """Submit a job over already-uploaded digests; returns the job id."""
        if isinstance(traces, str):
            traces = [traces]
        job = self._post_json(
            "/jobs", {"kind": kind, "traces": traces, "params": params or {}}
        )
        if self._served_by != self.base_url:
            # A ring redirect landed this job on another node; pin every
            # follow-up (status polls, the report fetch) to that node.
            self._job_nodes[job["id"]] = self._served_by
        return job["id"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}", base=self._job_base(job_id))

    def report(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/reports/{job_id}", base=self._job_base(job_id))

    def wait(self, job_id: str, timeout: float = 120.0, poll: float = 0.05) -> dict:
        """Poll until the job finishes; returns the result dict."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in _TERMINAL:
                break
            if time.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for job {job_id}", status=504)
            time.sleep(poll)
        if job["state"] == "failed":
            raise ServiceError(f"job {job_id} failed: {job['error']}", status=500)
        return self.report(job_id)["result"]

    # -- streaming ingestion -------------------------------------------------

    def open_stream(
        self, name: str = "", meta: dict | None = None,
        max_pending: int | None = None,
    ) -> str:
        """Open a chunked-append session; returns the session id."""
        payload: dict[str, Any] = {"name": name, "meta": meta or {}}
        if max_pending is not None:
            payload["max_pending"] = max_pending
        return self._post_json("/streams", payload)["id"]

    def send_chunk(
        self, sid: str, chunk_id: int, records, *,
        retries: int = 8, backoff: float = 0.05,
    ) -> dict[str, Any]:
        """Post one framed record block, retrying through 429 backpressure.

        Retries are safe: the service treats an already-applied chunk id
        as an idempotent duplicate, so a retry after an ambiguous failure
        cannot double-ingest.
        """
        body = encode_records_frame(records, chunk_id)
        delay = backoff
        for attempt in range(retries + 1):
            try:
                return self._request(
                    "POST", f"/traces/{sid}/chunks", body,
                    content_type="application/octet-stream",
                )
            except ServiceError as exc:
                if exc.status != 429 or attempt == retries:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 2.0)
        raise AssertionError("unreachable")

    def finalize_stream(
        self, sid: str, header: dict | None = None, *,
        analyze: bool = False, name: str | None = None,
        params: dict | None = None, timeout: float | None = None,
    ) -> dict[str, Any]:
        """Finalize a session into a stored trace (optionally analyzed)."""
        payload: dict[str, Any] = {"header": header or {}, "analyze": analyze}
        if name:
            payload["name"] = name
        if params:
            payload["params"] = params
        if timeout is not None:
            payload["timeout"] = timeout
        return self._post_json(f"/traces/{sid}/finalize", payload)

    def stream_status(self, sid: str) -> dict[str, Any]:
        return self._get(f"/streams/{sid}")

    def resume_stream(self, sid: str) -> int:
        """Where to resume a (possibly restarted) session: the next chunk
        id the server expects.  After a server restart this is the first
        chunk *after* the last durably checkpointed one — re-send from
        here; anything the server already has is an idempotent duplicate.
        """
        return int(self.stream_status(sid)["chunks"])

    def stream_snapshot(
        self, sid: str, top: int | None = None, render: bool = False
    ) -> dict[str, Any]:
        query = []
        if top is not None:
            query.append(f"top={top}")
        if render:
            query.append("render=1")
        suffix = f"?{'&'.join(query)}" if query else ""
        return self._get(f"/streams/{sid}/snapshot{suffix}")

    def streams(self) -> list[dict[str, Any]]:
        return self._get("/streams")["streams"]

    def stream_trace(
        self, trace: Trace, chunk_events: int = 65536, *,
        name: str | None = None, analyze: bool = False,
        params: dict | None = None,
    ) -> dict[str, Any]:
        """Ship a whole trace chunk-by-chunk and finalize; returns the
        finalize payload (``["trace"]["digest"]`` matches a whole-file
        upload of the same trace)."""
        sid = self.open_stream(name=name or "")
        for chunk_id, block in enumerate(split_records(trace.records, chunk_events)):
            self.send_chunk(sid, chunk_id, block)
        return self.finalize_stream(
            sid, header=header_dict(trace), analyze=analyze,
            name=name, params=params,
        )

    # -- one-call conveniences ----------------------------------------------

    def analyze(self, digest: str, **params) -> dict[str, Any]:
        return self.wait(self.submit("analyze", digest, params))

    def sampled_analyze(self, digest: str, **params) -> dict[str, Any]:
        """Statistical estimate from a sampled trace (``repro.core.estimate``);
        pass ``rate=`` to downsample a full trace server-side first."""
        return self.wait(self.submit("sampled_analyze", digest, params))

    def whatif(self, digest: str, lock: str, factor: float = 0.0, **params) -> dict:
        params = {"lock": lock, "factor": factor, **params}
        return self.wait(self.submit("whatif", digest, params))

    def whatif_protocol(
        self, digest: str, protocol: str = "fifo", scheduler: str = "fifo", **params
    ) -> dict:
        """Ground-truth policy forecast: replay under another lock protocol
        and/or scheduler (see ``repro.core.replay_whatif``)."""
        params = {"protocol": protocol, "scheduler": scheduler, **params}
        return self.wait(self.submit("whatif_protocol", digest, params))

    def compare(self, before: str, after: str, **params) -> dict[str, Any]:
        return self.wait(self.submit("compare", [before, after], params))

    def forecast(self, digest: str, **params) -> dict[str, Any]:
        return self.wait(self.submit("forecast", digest, params))

    # -- fleet observability -------------------------------------------------

    def fleet_summary(self, top: int | None = None) -> dict[str, Any]:
        """Cross-trace cluster summary (see ``repro.fleet``)."""
        suffix = f"?top={top}" if top is not None else ""
        return self._get(f"/fleet/summary{suffix}")

    def fleet_regressions(
        self,
        topk: int | None = None,
        noise_floor: float | None = None,
        sigma: float | None = None,
    ) -> dict[str, Any]:
        """Ranking-regression flags per workload series."""
        query = []
        if topk is not None:
            query.append(f"topk={topk}")
        if noise_floor is not None:
            query.append(f"noise_floor={noise_floor}")
        if sigma is not None:
            query.append(f"sigma={sigma}")
        suffix = f"?{'&'.join(query)}" if query else ""
        return self._get(f"/fleet/regressions{suffix}")

    def fleet_alerts(self) -> dict[str, Any]:
        """Evaluate the service's loaded alert rules right now."""
        return self._get("/fleet/alerts")

    def fleet_ingest(self) -> dict[str, Any]:
        """Catch fleet state up with every already-stored trace."""
        return self._request("POST", "/fleet/ingest", b"")

    def dashboard_html(self) -> str:
        """The live dashboard page as HTML text."""
        req = urllib.request.Request(f"{self.base_url}/dashboard")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return resp.read().decode("utf-8")

    def fleet_events(
        self, max_events: int = 1, timeout: float = 30.0
    ) -> list[dict[str, Any]]:
        """Read fleet events from the ``/fleet/events`` SSE stream.

        Blocks until ``max_events`` events arrived (the first one — the
        current state — is sent immediately on connect), then closes the
        stream.  ``timeout`` bounds each socket read, and keepalive
        comments reset it, so a healthy but idle stream does not raise.
        """
        req = urllib.request.Request(f"{self.base_url}/fleet/events")
        events: list[dict[str, Any]] = []
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            data_lines: list[str] = []
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("data:"):
                    data_lines.append(line[5:].lstrip())
                elif not line and data_lines:  # blank line = event boundary
                    events.append(json.loads("\n".join(data_lines)))
                    data_lines = []
                    if len(events) >= max_events:
                        break
        return events

    # -- operational --------------------------------------------------------

    def ring(self) -> dict[str, Any]:
        """This node's view of the consistent-hash routing ring."""
        return self._get("/ring")

    def metrics(self) -> dict[str, Any]:
        return self._get("/metrics")

    def health(self) -> dict[str, Any]:
        return self._get("/healthz")
