"""HTML report generation."""

import pytest

from repro.core.analyzer import analyze
from repro.report_html import render_html_report, write_html_report

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def html():
    trace = make_micro_program().run().trace
    return render_html_report(trace)


def test_structure(html):
    assert html.startswith("<!DOCTYPE html>")
    assert html.endswith("</html>")
    assert "TYPE 1" in html and "TYPE 2" in html


def test_contains_all_sections(html):
    for section in (
        "Execution timeline",
        "Criticality over time",
        "What-if predictions",
        "Scalability forecast",
        "Who holds L2 on the path",
    ):
        assert section in html


def test_both_whatif_modes_listed(html):
    assert "halve critical sections" in html
    assert "eliminate contention" in html


def test_lock_values_present(html):
    assert "83.33%" in html
    assert "L2" in html and "L1" in html


def test_svg_embedded(html):
    assert "<svg" in html and "</svg>" in html


def test_critical_rows_highlighted(html):
    assert 'class="critical"' in html


def test_custom_title():
    trace = make_micro_program().run().trace
    out = render_html_report(trace, title="My <App>")
    assert "My &lt;App&gt;" in out  # escaped


def test_write_to_file(tmp_path):
    trace = make_micro_program().run().trace
    path = write_html_report(trace, tmp_path / "report.html")
    assert path.stat().st_size > 5000


def test_reuses_analysis():
    trace = make_micro_program().run().trace
    analysis = analyze(trace)
    assert "critical path" in render_html_report(trace, analysis)


def test_forecast_bug_propagates(monkeypatch):
    # Only the documented zero-work AnalysisError may silence the
    # forecast section; a genuine defect inside forecast() must surface
    # instead of producing a silently incomplete report.
    import repro.report_html as mod

    def broken(analysis):
        raise TypeError("forecast regression")

    monkeypatch.setattr(mod, "forecast", broken)
    trace = make_micro_program().run().trace
    with pytest.raises(TypeError, match="forecast regression"):
        render_html_report(trace)


def test_zero_work_forecast_skipped(monkeypatch):
    # The legitimate skip: forecast raising AnalysisError ("cannot
    # forecast: zero total execution work") drops the section but still
    # renders the rest of the report.
    import repro.report_html as mod
    from repro.errors import AnalysisError

    def zero_work(analysis):
        raise AnalysisError("cannot forecast: zero total execution work")

    monkeypatch.setattr(mod, "forecast", zero_work)
    trace = make_micro_program().run().trace
    html = render_html_report(trace)
    assert "Scalability forecast" not in html
    assert html.endswith("</html>")
