"""Export traces to the Chrome trace-event format (Perfetto / about:tracing).

Turns a trace (plus, optionally, its analysis) into the JSON array the
Chrome tracing UI and Perfetto load: one timeline row per thread with

* complete events (``X``) for critical sections, named after their lock;
* instant events for barrier arrivals and condition signals;
* a dedicated "critical path" row showing which thread the path runs
  through at every instant (the paper's Fig. 1 picture, interactive).

Times are exported in microseconds (the format's unit); virtual-time
traces use 1 virtual time unit = 1 ms so sub-unit critical sections
remain visible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.analyzer import AnalysisResult
from repro.core.model import WaitKind
from repro.trace.trace import Trace

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Microseconds per trace time unit (1 unit -> 1 ms keeps zooming sane).
_SCALE_US = 1000.0


def to_chrome_trace(
    trace: Trace, analysis: AnalysisResult | None = None
) -> list[dict[str, Any]]:
    """Build the trace-event list (JSON-serializable)."""
    if analysis is None:
        from repro.core.analyzer import analyze

        analysis = analyze(trace, validate=False)
    events: list[dict[str, Any]] = []
    pid = 1

    for tid in trace.thread_ids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": trace.thread_name(tid)},
            }
        )

    t0 = trace.start_time

    def us(t: float) -> float:
        return (t - t0) * _SCALE_US

    for tid, tl in analysis.timelines.items():
        for obj, holds in tl.holds.items():
            name = trace.object_name(obj)
            for h in holds:
                events.append(
                    {
                        "name": name,
                        "cat": "critical-section",
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "ts": us(h.start),
                        "dur": max(0.0, (h.end - h.start) * _SCALE_US),
                        "args": {"contended": h.contended},
                    }
                )
        for w in tl.waits:
            events.append(
                {
                    "name": f"wait:{_wait_label(trace, w)}",
                    "cat": "blocked",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": us(w.start),
                    "dur": max(0.0, w.duration * _SCALE_US),
                    "args": {"waker": trace.thread_name(w.waker_tid)},
                }
            )

    # The critical path as its own row (tid -1): one slice per piece,
    # named after the thread the path runs through.
    for p in analysis.critical_path.pieces:
        if p.duration <= 0:
            continue
        events.append(
            {
                "name": f"on {trace.thread_name(p.tid)}",
                "cat": "critical-path",
                "ph": "X",
                "pid": pid,
                "tid": 10_000,
                "ts": us(p.start),
                "dur": p.duration * _SCALE_US,
            }
        )
    events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 10_000,
            "args": {"name": "CRITICAL PATH"},
        }
    )
    return events


def _wait_label(trace: Trace, w) -> str:
    if w.kind == WaitKind.JOIN:
        return f"join {trace.thread_name(w.obj)}"
    return trace.object_name(w.obj)


def write_chrome_trace(
    trace: Trace, path: str | Path, analysis: AnalysisResult | None = None
) -> Path:
    """Write the Chrome trace JSON to ``path`` (open it in Perfetto)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(trace, analysis), fh)
    return path
