"""Round-trip and corruption tests for trace serialization."""

import struct

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.reader import read_trace
from repro.trace.writer import MAGIC, write_trace


def assert_traces_equal(a, b):
    assert len(a) == len(b)
    assert np.array_equal(a.records, b.records)
    assert a.objects == b.objects
    assert a.threads == b.threads
    assert a.meta == b.meta


class TestBinaryFormat:
    def test_roundtrip(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        assert_traces_equal(micro_trace, read_trace(path))

    def test_sniffing_ignores_extension(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.bin", fmt="clt")
        assert_traces_equal(micro_trace, read_trace(path))

    def test_truncated_body_rejected(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(TraceFormatError, match="bytes of records"):
            read_trace(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "t.clt"
        path.write_bytes(MAGIC + struct.pack("<Q", 1000) + b"{}")
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_trace(path)

    def test_corrupt_header_json_rejected(self, tmp_path):
        path = tmp_path / "t.clt"
        bad = b"not json!!"
        path.write_bytes(MAGIC + struct.pack("<Q", len(bad)) + bad)
        with pytest.raises(TraceFormatError, match="corrupt header"):
            read_trace(path)

    def test_empty_file_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "t.clt"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="empty file"):
            read_trace(path)


class TestJsonlFormat:
    def test_roundtrip(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.jsonl")
        assert_traces_equal(micro_trace, read_trace(path))

    def test_bad_line_rejected(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.jsonl")
        with open(path, "a") as fh:
            fh.write("{broken\n")
        with pytest.raises(TraceFormatError, match="not JSON"):
            read_trace(path)

    def test_missing_field_rejected(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.jsonl")
        with open(path, "a") as fh:
            fh.write('{"seq": 99999, "time": 1.0}\n')
        with pytest.raises(TraceFormatError, match="bad event record"):
            read_trace(path)

    def test_blank_lines_tolerated(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.jsonl")
        text = path.read_text()
        path.write_text(text.replace("\n", "\n\n", 3))
        assert_traces_equal(micro_trace, read_trace(path))


def test_metadata_preserved(micro_trace, tmp_path):
    trace = read_trace(write_trace(micro_trace, tmp_path / "x.clt"))
    assert trace.meta["name"] == "micro"
    assert trace.objects[0].name == "L1"
    assert trace.threads[0] == "worker-0"


class TestExplicitFormat:
    """write_trace(fmt=) and the ambiguous-suffix guard."""

    def test_ambiguous_suffix_rejected(self, micro_trace, tmp_path):
        with pytest.raises(TraceFormatError, match="ambiguous suffix"):
            write_trace(micro_trace, tmp_path / "t.json")

    def test_no_suffix_rejected(self, micro_trace, tmp_path):
        with pytest.raises(TraceFormatError, match="ambiguous suffix"):
            write_trace(micro_trace, tmp_path / "trace")

    def test_explicit_fmt_overrides_suffix(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.json", fmt="jsonl")
        assert path.read_text().startswith('{"header"')
        assert_traces_equal(micro_trace, read_trace(path))

    def test_unknown_fmt_rejected(self, micro_trace, tmp_path):
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            write_trace(micro_trace, tmp_path / "t.clt", fmt="csv")

    def test_known_suffixes_still_infer(self, micro_trace, tmp_path):
        assert write_trace(micro_trace, tmp_path / "a.clt").exists()
        assert write_trace(micro_trace, tmp_path / "a.jsonl").exists()


class TestFormatSniffing:
    """Degenerate files must fail with TraceFormatError, not raw decode errors."""

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.clt"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="empty file"):
            read_trace(path)

    def test_file_shorter_than_magic(self, tmp_path):
        path = tmp_path / "tiny.clt"
        path.write_bytes(b"CLT")
        with pytest.raises(TraceFormatError, match="too short"):
            read_trace(path)

    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "garbage.clt"
        path.write_bytes(bytes(range(200, 256)) * 4)
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_text_garbage(self, tmp_path):
        path = tmp_path / "notes.jsonl"
        path.write_text("this is not a trace at all\n")
        with pytest.raises(TraceFormatError, match="not JSON"):
            read_trace(path)
