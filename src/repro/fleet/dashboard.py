"""Self-contained live HTML dashboard over fleet state.

``GET /dashboard`` on the analysis service returns this page: cluster
and regression tables plus inline SVG sparklines of each cluster's
``cp_fraction`` series (the same dependency-free SVG idiom as
:mod:`repro.viz.svg` and the tables of :mod:`repro.report_html`).  A
small script subscribes to the ``/fleet/events`` SSE stream and
re-renders in place whenever the aggregator's version advances, so the
page follows uploads and finalized stream sessions live without
polling.
"""

from __future__ import annotations

from typing import Any
from xml.sax.saxutils import escape

__all__ = ["render_dashboard", "render_sparkline"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 1100px; color: #212121; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; font-size: 0.9em; }
th, td { border: 1px solid #ddd; padding: 4px 10px; text-align: right; }
th { background: #f5f5f5; } td:first-child, th:first-child { text-align: left; }
tr.flagged td { background: #FFF3E0; }
tr.alert-page td { background: #FFEBEE; }
.note { color: #616161; font-size: 0.85em; }
#live { color: #2E7D32; font-size: 0.85em; }
svg.spark { vertical-align: middle; }
"""

_SPARK_W = 120
_SPARK_H = 22
_SPARK_COLOR = "#0072B2"
_SPARK_LAST = "#D32F2F"


def render_sparkline(
    series: list[float],
    width: int = _SPARK_W,
    height: int = _SPARK_H,
    vmax: float | None = None,
) -> str:
    """Inline SVG sparkline of one cluster's cp_fraction series."""
    if not series:
        return ""
    vmax = max(vmax if vmax is not None else 0.0, max(series), 1e-9)
    n = len(series)
    step = width / max(n - 1, 1)
    pts = " ".join(
        f"{i * step:.1f},{height - 2 - (v / vmax) * (height - 4):.1f}"
        for i, v in enumerate(series)
    )
    last_x = (n - 1) * step
    last_y = height - 2 - (series[-1] / vmax) * (height - 4)
    return (
        f'<svg class="spark" xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}">'
        f'<polyline points="{pts}" fill="none" stroke="{_SPARK_COLOR}" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2" fill="{_SPARK_LAST}"/>'
        "</svg>"
    )


def _pct(v: float) -> str:
    return f"{100.0 * v:.1f}%"


def _table(headers: list[str], rows: list[tuple[str, list[str]]]) -> str:
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = []
    for cls, row in rows:
        attr = f' class="{cls}"' if cls else ""
        body.append(f"<tr{attr}>{''.join(f'<td>{c}</td>' for c in row)}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def render_dashboard(
    summary: dict[str, Any],
    regressions: dict[str, Any],
    alerts: list[dict[str, Any]],
    nrules: int = 0,
    top: int = 15,
) -> str:
    """Render fleet state as one self-contained live HTML page."""
    flagged_fps = {
        f.get("fingerprint")
        for f in regressions.get("flags", [])
        if f.get("fingerprint")
    }
    cluster_rows: list[tuple[str, list[str]]] = []
    for c in summary.get("top", [])[:top]:
        cls = "flagged" if c["fingerprint"] in flagged_fps else ""
        cluster_rows.append(
            (
                cls,
                [
                    escape(c["workload"]),
                    escape(c["site"]),
                    f"<code>{escape(c['fingerprint'][:8])}</code>",
                    str(c["runs"]),
                    _pct(c["cp_mean"]),
                    _pct(c["cp_latest"]),
                    _pct(c["cont_max"]),
                    render_sparkline(c.get("series", [])),
                ],
            )
        )

    regression_rows: list[tuple[str, list[str]]] = []
    for f in regressions.get("flags", []):
        if f["kind"] == "cp_shift":
            detail = (
                f"{_pct(f['baseline'])} &rarr; {_pct(f['latest'])} "
                f"(&Delta; {f['delta']:+.3f}, band {f['band']:.3f})"
            )
            site = escape(f["site"])
        elif f["kind"] == "top1_change":
            detail = f"was {escape(f['previous_site'])}"
            site = escape(f["site"])
        else:
            detail = f"top-k churn {_pct(f['churn'])}"
            site = "&mdash;"
        regression_rows.append(
            ("flagged", [escape(f["workload"]), escape(f["kind"]), site, detail])
        )

    alert_rows: list[tuple[str, list[str]]] = []
    for a in alerts:
        values = ", ".join(f"{k}={v:.3f}" for k, v in a.get("values", {}).items())
        alert_rows.append(
            (
                "alert-page" if a["severity"] == "page" else "flagged",
                [
                    escape(a["rule"]),
                    escape(a["severity"]),
                    escape(a["workload"] or "*"),
                    escape(a["site"]) if a.get("site") else "&mdash;",
                    escape(a["expr"]) + f" <span class='note'>[{escape(values)}]</span>",
                ],
            )
        )

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>fleet dashboard</title><style>{_STYLE}</style></head><body>",
        "<h1>Critical-lock fleet dashboard</h1>",
        f"<p>{summary.get('traces', 0)} trace(s) &middot; "
        f"{summary.get('workloads', 0)} workload(s) &middot; "
        f"{summary.get('clusters', 0)} lock cluster(s) &middot; "
        f"state v{summary.get('version', 0)} &middot; "
        "<span id='live'>connecting&hellip;</span></p>",
        "<div id='content'>",
        "<h2>Recurring critical-lock clusters</h2>",
        _table(
            ["Workload", "Lock site", "FP", "Runs", "CP% mean", "CP% latest",
             "Cont. max", "Trend"],
            cluster_rows,
        )
        if cluster_rows
        else "<p class='note'>no observations yet — upload or stream a trace</p>",
        "<h2>Ranking regressions</h2>",
        _table(["Workload", "Kind", "Lock site", "Detail"], regression_rows)
        if regression_rows
        else "<p class='note'>no regressions flagged</p>",
        f"<h2>Alerts ({nrules} rule(s) loaded)</h2>",
        _table(["Rule", "Severity", "Workload", "Lock site", "Condition"], alert_rows)
        if alert_rows
        else "<p class='note'>no alerts firing</p>",
        "</div>",
        """<script>
const live = document.getElementById('live');
const es = new EventSource('/fleet/events');
es.onopen = () => { live.textContent = 'live (SSE connected)'; };
es.onerror = () => { live.textContent = 'SSE disconnected — reload to resume'; };
es.addEventListener('fleet', (ev) => {
  const state = JSON.parse(ev.data);
  live.textContent = 'live — state v' + state.version + ', ' +
    state.summary.traces + ' trace(s), ' + state.alerts + ' alert(s)';
  // Full re-render keeps the page honest without a JS framework.
  fetch('/dashboard').then(r => r.text()).then(html => {
    const doc = new DOMParser().parseFromString(html, 'text/html');
    const next = doc.getElementById('content');
    if (next) document.getElementById('content').replaceWith(next);
  });
});
</script>""",
        "</body></html>",
    ]
    return "".join(parts)
