#!/usr/bin/env python
"""TSP branch-and-bound: diagnose and fix a global-queue bottleneck (§V.E).

The workload is a real 10-city branch-and-bound search whose partial
paths flow through one shared FIFO queue.  Critical lock analysis shows
``Qlock`` owning most of the critical path; the paper's fix — a
Michael-Scott two-lock queue — parallelizes enqueue and dequeue.

Run:  python examples/tsp_search.py  [--threads 24] [--cities 10]
"""

import argparse

from repro import analyze
from repro.tables import format_table
from repro.units import format_percent
from repro.workloads import TSP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=24)
    parser.add_argument("--cities", type=int, default=10)
    args = parser.parse_args()

    original = TSP(ncities=args.cities)
    res = original.run(nthreads=args.threads, seed=0)
    analysis = analyze(res.trace)

    print(f"TSP: {args.cities} cities, {args.threads} threads")
    dist = original.make_instance()
    print(f"greedy tour bound: {original.greedy_tour(dist):.1f}")
    print()
    print(analysis.report.render_type1(3))
    print()
    print(analysis.report.render_type2(3))

    qlock = analysis.report.lock("Q.qlock")
    print()
    print(
        f"Q.qlock owns {format_percent(qlock.cp_fraction)} of the critical path "
        f"but only {format_percent(qlock.avg_wait_fraction)} average wait time — "
        "an idleness profiler would underrate it."
    )

    # Apply the paper's optimization and compare.
    optimized = TSP(ncities=args.cities, split_queue=True)
    opt_res = optimized.run(nthreads=args.threads, seed=0)
    opt_analysis = analyze(opt_res.trace)

    rows = [
        ["original (Qlock)", f"{res.completion_time:.2f}", "-"],
        [
            "two-lock queue",
            f"{opt_res.completion_time:.2f}",
            f"{res.completion_time / opt_res.completion_time - 1:+.1%}",
        ],
    ]
    print()
    print(format_table(["Version", "Completion time", "Improvement"], rows,
                       title="head/tail split validation (paper: ~19% at 24 threads)"))
    print()
    print("top locks after the split:")
    for m in opt_analysis.report.top_locks(2):
        print(f"  {m.name}: {format_percent(m.cp_fraction)} of the critical path")


if __name__ == "__main__":
    main()
