"""Regenerate the golden report files in this directory.

Usage (from the repo root)::

    PYTHONPATH=src python tests/golden/regen.py

Run it only after an *intentional* change to metrics or report
formatting, then review the resulting diff like any other code change.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from test_golden_reports import CASES, GOLDEN_DIR, render_case  # noqa: E402


def main() -> int:
    for case in sorted(CASES):
        path = GOLDEN_DIR / f"{case}.txt"
        text = render_case(case)
        changed = not path.exists() or path.read_text() != text
        path.write_text(text)
        print(f"{'updated' if changed else 'unchanged'}  {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
