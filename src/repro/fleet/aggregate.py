"""Cross-trace aggregation: clusters, time-series and regressions.

:class:`FleetAggregator` is the fleet's memory.  Every analyzed trace
becomes one compact :class:`Observation` — the fingerprinted lock
ranking plus per-lock ``cp_fraction`` — appended to its workload's
time-series and persisted as JSON under the service data directory, so
a restart (or a worker process handling a ``fleet_*`` job) reloads the
exact state.  Aggregation is incremental and idempotent by trace
digest: re-observing a stored trace is a no-op, which is what lets the
service update fleet state on every store write without rescans.

Regression detection compares a workload's latest observation against
the rest of its series.  The noise band is calibrated from the repeated
runs themselves: a lock's ``cp_fraction`` shift only counts when it
exceeds ``max(noise_floor, sigma * std(baseline))``, so byte-identical
re-uploads never alarm while a genuine ranking shift does.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.fleet.fingerprint import fingerprint_lock
from repro.tables import format_table
from repro.units import format_percent

__all__ = ["Observation", "FleetAggregator", "render_summary", "render_regressions"]

#: Per-observation lock cap: the ranking tail carries no fleet signal.
_MAX_LOCKS = 32
#: Per-workload series cap (oldest observations are dropped beyond it).
_MAX_OBSERVATIONS = 512
#: Per-cluster series length exported in summaries (sparkline width).
_SERIES_LEN = 32

_STATE_VERSION = 1


@dataclass(frozen=True)
class Observation:
    """One analyzed trace, reduced to its fleet-relevant ranking."""

    digest: str
    workload: str
    seq: int
    ts: float
    name: str
    duration: float
    nthreads: int
    #: fingerprint -> {"site", "name", "cp", "cont", "wait"}
    locks: dict[str, dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "workload": self.workload,
            "seq": self.seq,
            "ts": self.ts,
            "name": self.name,
            "duration": self.duration,
            "nthreads": self.nthreads,
            "locks": self.locks,
        }

    @classmethod
    def from_report(
        cls,
        report: dict[str, Any],
        *,
        digest: str,
        workload: str,
        seq: int,
        ts: float,
    ) -> "Observation":
        """Reduce an ``analyze`` report dict to an observation."""
        locks: dict[str, dict[str, Any]] = {}
        ranked = sorted(
            (report.get("locks") or {}).items(),
            key=lambda kv: kv[1].get("cp_time_frac", 0.0),
            reverse=True,
        )
        for name, m in ranked[:_MAX_LOCKS]:
            fp = fingerprint_lock(workload, name)
            entry = locks.setdefault(
                fp.fingerprint,
                {"site": fp.site, "name": name, "cp": 0.0, "cont": 0.0, "wait": 0.0},
            )
            # Instances of one site (pool[0..N].lock) fold into their
            # cluster: cp mass adds, contention takes the worst member.
            entry["cp"] += float(m.get("cp_time_frac", 0.0))
            entry["cont"] = max(entry["cont"], float(m.get("cont_prob_on_cp", 0.0)))
            entry["wait"] += float(m.get("wait_time_frac", 0.0))
        return cls(
            digest=digest,
            workload=workload,
            seq=seq,
            ts=ts,
            name=str(report.get("name", "")),
            duration=float(report.get("duration", 0.0)),
            nthreads=int(report.get("nthreads", 0)),
            locks=locks,
        )


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


class FleetAggregator:
    """Persistent, thread-safe fleet state over analyzed traces."""

    def __init__(
        self,
        state_dir: str | Path,
        *,
        noise_floor: float = 0.05,
        sigma: float = 3.0,
        topk: int = 5,
    ):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.state_path = self.state_dir / "fleet.json"
        self.noise_floor = noise_floor
        self.sigma = sigma
        self.topk = topk
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._seq = 0
        self._version = 0
        self._digests: dict[str, str] = {}  # digest -> workload
        self._series: dict[str, list[Observation]] = {}
        self._load()

    # -- ingest ---------------------------------------------------------------

    def has(self, digest: str) -> bool:
        with self._lock:
            return digest in self._digests

    def observe(
        self,
        report: dict[str, Any],
        *,
        digest: str,
        workload: str,
        ts: float | None = None,
        save: bool = True,
    ) -> Observation | None:
        """Fold one analysis report into fleet state.

        Returns the new :class:`Observation`, or ``None`` when the
        digest was already observed (idempotent re-upload).
        """
        with self._lock:
            if digest in self._digests:
                return None
            self._seq += 1
            obs = Observation.from_report(
                report,
                digest=digest,
                workload=workload,
                seq=self._seq,
                ts=time.time() if ts is None else ts,
            )
            self._digests[digest] = workload
            series = self._series.setdefault(workload, [])
            series.append(obs)
            if len(series) > _MAX_OBSERVATIONS:
                del series[: len(series) - _MAX_OBSERVATIONS]
            self._version += 1
            self._cond.notify_all()
            if save:
                self._save_locked()
            return obs

    # -- change notification (SSE) --------------------------------------------

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def wait_version(self, last: int, timeout: float | None = None) -> int:
        """Block until the state version exceeds ``last`` (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._version <= last:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            return self._version

    # -- queries --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "workloads": len(self._series),
                "observations": sum(len(s) for s in self._series.values()),
                "digests": len(self._digests),
                "version": self._version,
            }

    def summary(self, top: int = 20) -> dict[str, Any]:
        """Fleet-wide cluster summary: recurring bottlenecks first."""
        with self._lock:
            clusters: dict[tuple[str, str], dict[str, Any]] = {}
            for workload, series in self._series.items():
                for obs in series:
                    for fp, m in obs.locks.items():
                        c = clusters.setdefault(
                            (workload, fp),
                            {
                                "workload": workload,
                                "fingerprint": fp,
                                "site": m["site"],
                                "names": set(),
                                "series": [],
                                "cont": 0.0,
                            },
                        )
                        c["names"].add(m["name"])
                        c["series"].append(float(m["cp"]))
                        c["cont"] = max(c["cont"], float(m["cont"]))
            out = []
            for c in clusters.values():
                series = c["series"]
                out.append(
                    {
                        "workload": c["workload"],
                        "fingerprint": c["fingerprint"],
                        "site": c["site"],
                        "names": sorted(c["names"])[:8],
                        "runs": len(series),
                        "cp_mean": sum(series) / len(series),
                        "cp_latest": series[-1],
                        "cp_max": max(series),
                        "cont_max": c["cont"],
                        "series": [round(v, 6) for v in series[-_SERIES_LEN:]],
                    }
                )
            out.sort(key=lambda c: (-c["cp_mean"], c["workload"], c["site"]))
            return {
                "traces": len(self._digests),
                "workloads": len(self._series),
                "clusters": len(out),
                "version": self._version,
                "top": out[:top],
            }

    def regressions(
        self,
        *,
        topk: int | None = None,
        noise_floor: float | None = None,
        sigma: float | None = None,
        min_runs: int = 2,
    ) -> dict[str, Any]:
        """Latest-vs-baseline shift detection per workload.

        Flags three kinds: ``cp_shift`` (a lock's ``cp_fraction`` moved
        beyond the calibrated noise band), ``top1_change`` (the single
        most critical lock is a different site) and ``rank_churn``
        (more than a quarter of the top-k set was replaced).
        """
        topk = self.topk if topk is None else topk
        noise_floor = self.noise_floor if noise_floor is None else noise_floor
        sigma = self.sigma if sigma is None else sigma
        flags: list[dict[str, Any]] = []
        workloads: dict[str, Any] = {}
        with self._lock:
            for workload, series in sorted(self._series.items()):
                if len(series) < min_runs:
                    workloads[workload] = {"runs": len(series), "checked": False}
                    continue
                latest, baseline = series[-1], series[:-1]
                base_values: dict[str, list[float]] = {}
                meta: dict[str, dict[str, str]] = {}
                for obs in baseline:
                    for fp, m in obs.locks.items():
                        base_values.setdefault(fp, []).append(float(m["cp"]))
                        meta.setdefault(fp, {"site": m["site"], "name": m["name"]})
                for fp, m in latest.locks.items():
                    meta.setdefault(fp, {"site": m["site"], "name": m["name"]})

                wflags: list[dict[str, Any]] = []
                for fp in sorted(set(base_values) | set(latest.locks)):
                    # A lock absent from a run held 0% of its critical path.
                    values = base_values.get(fp, [])
                    values = values + [0.0] * (len(baseline) - len(values))
                    mean = sum(values) / len(values)
                    band = max(noise_floor, sigma * _std(values))
                    latest_cp = float(latest.locks.get(fp, {}).get("cp", 0.0))
                    delta = latest_cp - mean
                    if abs(delta) > band:
                        wflags.append(
                            {
                                "kind": "cp_shift",
                                "workload": workload,
                                "fingerprint": fp,
                                "site": meta[fp]["site"],
                                "name": meta[fp]["name"],
                                "baseline": mean,
                                "latest": latest_cp,
                                "delta": delta,
                                "band": band,
                            }
                        )

                def _top(locks: dict[str, dict[str, Any]], k: int) -> list[str]:
                    ranked = sorted(
                        locks.items(), key=lambda kv: -float(kv[1]["cp"])
                    )
                    return [fp for fp, _ in ranked[:k]]

                base_rank: dict[str, dict[str, Any]] = {
                    fp: {"cp": sum(vs) / len(baseline)}
                    for fp, vs in base_values.items()
                }
                base_top = _top(base_rank, topk)
                latest_top = _top(latest.locks, topk)
                k_eff = max(len(base_top), len(latest_top), 1)
                churn = 1.0 - len(set(base_top) & set(latest_top)) / k_eff
                top1_changed = bool(
                    base_top and latest_top and base_top[0] != latest_top[0]
                )
                if top1_changed:
                    wflags.append(
                        {
                            "kind": "top1_change",
                            "workload": workload,
                            "fingerprint": latest_top[0],
                            "site": meta[latest_top[0]]["site"],
                            "name": meta[latest_top[0]]["name"],
                            "previous_site": meta[base_top[0]]["site"],
                            "churn": churn,
                        }
                    )
                if churn > 0.25:
                    wflags.append(
                        {
                            "kind": "rank_churn",
                            "workload": workload,
                            "churn": churn,
                            "entered": [
                                meta[fp]["site"]
                                for fp in latest_top
                                if fp not in base_top
                            ],
                            "left": [
                                meta[fp]["site"]
                                for fp in base_top
                                if fp not in latest_top
                            ],
                        }
                    )
                workloads[workload] = {
                    "runs": len(series),
                    "checked": True,
                    "topk_churn": churn,
                    "top1_changed": top1_changed,
                    "flags": len(wflags),
                }
                flags.extend(wflags)
        return {
            "workloads": workloads,
            "flags": flags,
            "params": {
                "topk": topk,
                "noise_floor": noise_floor,
                "sigma": sigma,
                "min_runs": min_runs,
            },
        }

    def cluster_metrics(self) -> list[dict[str, Any]]:
        """Per-cluster metric rows for alert-rule evaluation."""
        summary = self.summary(top=10**9)
        regressions = self.regressions()
        deltas = {
            (f["workload"], f["fingerprint"]): f["delta"]
            for f in regressions["flags"]
            if f["kind"] == "cp_shift"
        }
        rows = []
        for c in summary["top"]:
            rows.append(
                {
                    "workload": c["workload"],
                    "fingerprint": c["fingerprint"],
                    "site": c["site"],
                    "cp_fraction": c["cp_latest"],
                    "cp_fraction_mean": c["cp_mean"],
                    "cp_fraction_delta": deltas.get(
                        (c["workload"], c["fingerprint"]), 0.0
                    ),
                    "cont_prob": c["cont_max"],
                    "runs": c["runs"],
                }
            )
        return rows

    def workload_metrics(self) -> list[dict[str, Any]]:
        """Per-workload metric rows for alert-rule evaluation."""
        regressions = self.regressions()
        rows = []
        for workload, w in sorted(regressions["workloads"].items()):
            rows.append(
                {
                    "workload": workload,
                    "runs": w["runs"],
                    "topk_churn": w.get("topk_churn", 0.0),
                    "regressions": w.get("flags", 0),
                }
            )
        return rows

    # -- persistence ----------------------------------------------------------

    def save(self) -> None:
        with self._lock:
            self._save_locked()

    def _save_locked(self) -> None:
        blob = {
            "state_version": _STATE_VERSION,
            "seq": self._seq,
            "version": self._version,
            "digests": self._digests,
            "workloads": {
                w: [o.to_dict() for o in series]
                for w, series in self._series.items()
            },
        }
        tmp = self.state_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(blob), encoding="utf-8")
        tmp.replace(self.state_path)

    def _load(self) -> None:
        if not self.state_path.exists():
            return
        try:
            blob = json.loads(self.state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # corrupt state: start fresh, traces re-ingest on demand
        if blob.get("state_version") != _STATE_VERSION:
            return
        self._seq = int(blob.get("seq", 0))
        self._version = int(blob.get("version", 0))
        self._digests = dict(blob.get("digests", {}))
        for workload, series in blob.get("workloads", {}).items():
            self._series[workload] = [
                Observation(
                    digest=o["digest"],
                    workload=o["workload"],
                    seq=o["seq"],
                    ts=o["ts"],
                    name=o.get("name", ""),
                    duration=o.get("duration", 0.0),
                    nthreads=o.get("nthreads", 0),
                    locks=o.get("locks", {}),
                )
                for o in series
            ]


# -- rendering ---------------------------------------------------------------


def render_summary(summary: dict[str, Any], n: int = 15) -> str:
    """Text table of the fleet's recurring bottleneck clusters."""
    head = (
        f"fleet summary: {summary['traces']} trace(s), "
        f"{summary['workloads']} workload(s), {summary['clusters']} lock cluster(s)"
    )
    rows = [
        [
            c["workload"],
            c["site"],
            c["fingerprint"][:8],
            c["runs"],
            format_percent(c["cp_mean"]),
            format_percent(c["cp_latest"]),
            format_percent(c["cont_max"]),
        ]
        for c in summary["top"][:n]
    ]
    if not rows:
        return head + "\n  (no observations yet)"
    table = format_table(
        ["Workload", "Lock site", "Fingerprint", "Runs", "CP % mean",
         "CP % latest", "Cont. max"],
        rows,
        title="Recurring critical-lock clusters (by mean CP time share)",
    )
    return f"{head}\n\n{table}"


def render_regressions(regressions: dict[str, Any]) -> str:
    """Text rendering of detected ranking regressions."""
    flags = regressions["flags"]
    params = regressions["params"]
    checked = [w for w, v in regressions["workloads"].items() if v.get("checked")]
    head = (
        f"regression check: {len(checked)} workload(s) with >= "
        f"{params['min_runs']} runs, noise band max({params['noise_floor']:g}, "
        f"{params['sigma']:g} sigma), top-{params['topk']} churn"
    )
    if not flags:
        return head + "\n  no regressions flagged"
    lines = [head]
    for f in flags:
        if f["kind"] == "cp_shift":
            lines.append(
                f"  [cp_shift]    {f['workload']}: {f['site']} "
                f"{format_percent(f['baseline'])} -> {format_percent(f['latest'])} "
                f"(delta {f['delta']:+.3f}, band {f['band']:.3f})"
            )
        elif f["kind"] == "top1_change":
            lines.append(
                f"  [top1_change] {f['workload']}: most critical lock is now "
                f"{f['site']} (was {f['previous_site']})"
            )
        else:
            lines.append(
                f"  [rank_churn]  {f['workload']}: top-k churn "
                f"{format_percent(f['churn'])}"
                + (f", entered {', '.join(f['entered'])}" if f["entered"] else "")
                + (f", left {', '.join(f['left'])}" if f["left"] else "")
            )
    return "\n".join(lines)
