"""Experiment regeneration: registry and paper-shape assertions.

These run the real experiments at reduced sizes where possible; the full
paper-scale runs live in benchmarks/.
"""

import pytest

from repro.errors import ReproError
from repro.experiments import fig6, fig7, fig9, tsp_opt
from repro.experiments.harness import list_experiments, run_experiment, table1, table2


def test_registry_complete():
    ids = list_experiments()
    for expected in (
        "table1", "table2", "fig6", "fig7", "fig8", "fig9",
        "fig10_11", "fig12", "fig13_14", "tsp_opt",
    ):
        assert expected in ids


def test_unknown_experiment():
    with pytest.raises(ReproError, match="unknown experiment"):
        run_experiment("fig99")


def test_static_tables_render():
    for result in (table1(), table2()):
        text = result.render()
        assert result.exp_id in text
        assert len(result.rows) >= 5


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(nthreads=4)

    def test_cp_time_ranks_l2_first(self, result):
        assert result.values["L2"]["cp_fraction"] > result.values["L1"]["cp_fraction"]

    def test_wait_time_ranks_l1_first(self, result):
        assert result.values["L1"]["wait_fraction"] > result.values["L2"]["wait_fraction"]

    def test_l2_optimization_wins(self, result):
        assert result.values["L2"]["speedup"] > result.values["L1"]["speedup"]

    def test_prediction_matches_measurement(self, result):
        for lock in ("L1", "L2"):
            assert result.values[lock]["predicted_speedup"] == pytest.approx(
                result.values[lock]["speedup"], rel=1e-6
            )

    def test_exact_paper_cp_fractions(self, result):
        assert result.values["L1"]["cp_fraction"] == pytest.approx(1 / 6)
        assert result.values["L2"]["cp_fraction"] == pytest.approx(5 / 6)

    def test_render(self, result):
        text = result.render()
        assert "83.33%" in text and "16.67%" in text


class TestFig7:
    def test_timeline_and_counts(self):
        result = fig7.run(nthreads=4, width=60)
        assert result.values["l2_on_cp"] == 4
        assert result.values["l1_on_cp"] == 1
        chart = result.extra_text
        assert "critical path" in chart
        assert "|" in chart


class TestFig9Small:
    def test_growth_shape(self):
        result = fig9.run(thread_counts=(4, 16), seed=42)
        tq0 = "tq[0].qlock"
        assert result.values[16][tq0]["cp_fraction"] > result.values[4][tq0]["cp_fraction"]
        # TYPE 1 exceeds TYPE 2 weight at scale.
        assert (
            result.values[16][tq0]["cp_fraction"]
            > result.values[16][tq0]["wait_fraction"]
        )


class TestTSPOpt:
    def test_shapes(self):
        result = tsp_opt.run(nthreads=16, seed=0)
        assert result.values["qlock_cp_fraction"] > 0.2
        assert result.values["improvement"] > 0.0
        assert "Qlock" in result.render() or "Q.qlock" in result.render()
