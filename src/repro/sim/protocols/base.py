"""The lock-protocol interface and the FIFO baseline.

A :class:`LockProtocol` owns every policy decision the engine makes when
threads contend for lock-like objects (mutexes, semaphores, reader-writer
locks) and when condition-variable waiters are woken:

* queue discipline — where a blocked acquirer waits (:meth:`enqueue`)
  and who is granted ownership at release time (:meth:`select`);
* whether an arriving thread may take a *free* lock at all
  (:meth:`grant_free` — the recorded/identity protocol defers a thread
  that is ahead of its recorded turn);
* handoff cost — an optional wake-up latency between a release and the
  waiter's OBTAIN (:meth:`handoff_latency`), and an optional spin window
  during which a blocked thread keeps its core in core-limited mode
  (:meth:`spin_hold`);
* priority bookkeeping — :meth:`on_block` / :meth:`on_obtain` /
  :meth:`on_release` hooks where inheritance and ceiling protocols
  adjust :attr:`SimThread.boost`;
* reader-writer policy — :meth:`rw_can_grant` for arrivals and
  :meth:`rw_drain` for release-time grants (the *drain* mutates the
  rwlock's holder state; the engine only emits events and wakes
  threads);
* condition wake order — :meth:`select_cond_waiter`.

The base class implements the engine's historical behavior: strict FIFO
everywhere, zero handoff latency, no spinning, no priorities.  Running
any simulation with the default protocol is bit-identical to the
pre-protocol engine — the golden reports pin this.

State-mutation contract (kept deliberately asymmetric so the default
path stays allocation-free): for mutexes and semaphores the *engine*
mutates ownership and the protocol only picks threads; for rwlocks the
release-time :meth:`rw_drain` mutates ``rw.readers``/``rw.writer``
itself because batching decisions and state updates are inseparable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.sync import SimCondition, SimMutex, SimRWLock
    from repro.sim.thread import SimThread

__all__ = ["LockProtocol", "FifoProtocol", "holders", "waiter_threads"]


def holders(lock: Any) -> Iterable["SimThread"]:
    """Threads currently holding a lock-like object (any mode)."""
    owner = getattr(lock, "owner", None)
    if owner is not None:
        yield owner
    writer = getattr(lock, "writer", None)
    if writer is not None:
        yield writer
    yield from getattr(lock, "readers", ())


def waiter_threads(lock: Any) -> Iterable["SimThread"]:
    """Threads queued on a lock-like object (rwlock entries are pairs)."""
    for w in getattr(lock, "waiters", ()):
        yield w[0] if isinstance(w, tuple) else w


class LockProtocol:
    """Pluggable acquisition policy (see module docstring).

    Subclasses override the hooks they care about; every default is the
    FIFO baseline.  One protocol instance serves one simulator run.
    """

    #: Registry name (subclasses override).
    name = "fifo"

    def __init__(self) -> None:
        self.engine: "Simulator | None" = None

    def bind(self, engine: "Simulator") -> None:
        """Attach to the engine (called once, before the run starts)."""
        self.engine = engine

    def describe(self) -> dict[str, Any]:
        """Parameters worth recording in forecasts / trace metadata."""
        return {}

    # -- mutex / semaphore queue discipline ---------------------------------

    def enqueue(self, lock: Any, thread: "SimThread") -> None:
        """Queue a blocked acquirer."""
        lock.waiters.append(thread)

    def select(self, lock: Any) -> "SimThread | None":
        """Pick the next owner at release time (``None`` leaves it free).

        Only called when ``lock.waiters`` is non-empty; the returned
        thread must have been removed from the queue.
        """
        return lock.waiters.popleft()

    def grant_free(self, lock: Any, thread: "SimThread") -> bool:
        """May ``thread`` take this currently-free (or counting) lock?"""
        return True

    def handoff_latency(self, lock: Any, thread: "SimThread") -> float:
        """Virtual-time delay between RELEASE and the waiter's OBTAIN."""
        return 0.0

    def spin_hold(self, lock: Any, thread: "SimThread") -> float:
        """How long a blocking acquirer keeps its core (core-limited mode)."""
        return 0.0

    def obtain_arg(self, lock: Any, thread: "SimThread", contended: bool) -> int:
        """The OBTAIN event's ``arg`` (1 = contended acquisition)."""
        return 1 if contended else 0

    # -- priority bookkeeping ------------------------------------------------

    def on_block(self, lock: Any, thread: "SimThread") -> None:
        """``thread`` just blocked on ``lock`` (inheritance boost point)."""

    def on_obtain(self, lock: Any, thread: "SimThread") -> None:
        """``thread`` was granted ``lock`` (ceiling boost point)."""

    def on_release(self, lock: Any, thread: "SimThread") -> None:
        """``thread`` dropped ``lock`` (boost recomputation point)."""

    # -- reader-writer policy ------------------------------------------------

    def rw_can_grant(self, rw: "SimRWLock", thread: "SimThread", write: bool) -> bool:
        """May an arriving request be granted immediately?

        FIFO fairness: queue behind any earlier waiter, so writers cannot
        starve behind a stream of late readers.
        """
        if rw.waiters:
            return False
        if write:
            return rw.writer is None and not rw.readers
        return rw.writer is None

    def rw_enqueue(self, rw: "SimRWLock", thread: "SimThread", write: bool) -> None:
        rw.waiters.append((thread, write))

    def rw_drain(self, rw: "SimRWLock") -> list[tuple["SimThread", bool]]:
        """Grants to perform after a release (mutates holder state).

        FIFO: consecutive queued readers are granted as a batch; a queued
        writer is granted alone and blocks everyone behind it.
        """
        grants: list[tuple["SimThread", bool]] = []
        while rw.waiters:
            waiter, wants_write = rw.waiters[0]
            if wants_write:
                if rw.writer is None and not rw.readers:
                    rw.waiters.popleft()
                    rw.writer = waiter
                    grants.append((waiter, True))
                break  # a queued writer blocks everyone behind it
            if rw.writer is not None:
                break
            rw.waiters.popleft()
            rw.readers.add(waiter)
            grants.append((waiter, False))
        return grants

    # -- condition variables -------------------------------------------------

    def select_cond_waiter(
        self, cv: "SimCondition"
    ) -> tuple["SimThread", "SimMutex"]:
        """Pick the waiter a signal/broadcast wakes next (queue non-empty)."""
        return cv.waiters.popleft()


class FifoProtocol(LockProtocol):
    """Explicit alias of the baseline (handy for registries and tests)."""

    name = "fifo"
