"""Greedy optimization planning on the what-if engine.

Given a budget of optimization steps ("halve one lock's critical
sections" each), repeatedly pick the lock whose shrink yields the
largest predicted end-to-end gain, apply it to the DAG weights, and
continue — producing an ordered optimization plan with cumulative
predicted speedups.  This operationalizes the paper's workflow (rank,
optimize, re-rank: §V.D) without any re-running, and naturally handles
the path-shift effect: after step 1 shrinks the dominant lock, step 2
is chosen against the *shifted* critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analyzer import AnalysisResult
from repro.errors import AnalysisError
from repro.tables import format_table
from repro.units import format_percent

__all__ = ["PlanStep", "OptimizationPlan", "plan_optimizations"]


@dataclass(frozen=True)
class PlanStep:
    """One greedy step: shrink one lock, with predicted outcomes."""

    lock_name: str
    factor: float
    predicted_time: float
    step_gain: float  # vs the previous step's time
    cumulative_speedup: float  # vs the original baseline


@dataclass(frozen=True)
class OptimizationPlan:
    """Ordered lock-optimization plan with cumulative predictions."""

    baseline_time: float
    steps: list[PlanStep]

    @property
    def final_speedup(self) -> float:
        return self.steps[-1].cumulative_speedup if self.steps else 1.0

    def render(self) -> str:
        rows = [
            [
                i + 1,
                s.lock_name,
                f"x{s.factor:.2f}",
                f"{s.predicted_time:.4g}",
                format_percent(s.step_gain),
                f"{s.cumulative_speedup:.3f}",
            ]
            for i, s in enumerate(self.steps)
        ]
        return format_table(
            ["Step", "Shrink lock", "To", "Predicted time", "Step gain",
             "Cumulative speedup"],
            rows,
            title=f"Optimization plan (baseline {self.baseline_time:.4g})",
        )


def plan_optimizations(
    analysis: AnalysisResult,
    steps: int = 3,
    factor: float = 0.5,
    min_gain: float = 0.01,
) -> OptimizationPlan:
    """Greedily pick the best lock to shrink, ``steps`` times.

    Each step multiplies the chosen lock's critical-section execution
    time by ``factor`` on the event DAG (composing with earlier steps)
    and stops early once the best remaining step gains less than
    ``min_gain`` (fractional).
    """
    if steps < 1:
        raise AnalysisError(f"steps must be >= 1, got {steps}")
    if not 0 <= factor < 1:
        raise AnalysisError(f"factor must be in [0, 1), got {factor}")
    graph = analysis.graph
    baseline = graph.completion_time()
    weights = graph.edge_w.copy()
    current = baseline
    candidates = [m.obj for m in analysis.report.locks.values() if m.total_invocations]
    plan: list[PlanStep] = []
    for _ in range(steps):
        best: tuple[float, int, np.ndarray] | None = None
        for obj in candidates:
            trial = _shrunk(graph, analysis, weights, obj, factor)
            t = graph.completion_time(trial)
            if best is None or t < best[0]:
                best = (t, obj, trial)
        if best is None:
            break
        t, obj, trial = best
        gain = 1.0 - t / current if current > 0 else 0.0
        if gain < min_gain:
            break
        plan.append(
            PlanStep(
                lock_name=analysis.trace.object_name(obj),
                factor=factor,
                predicted_time=t,
                step_gain=gain,
                cumulative_speedup=baseline / t if t > 0 else float("inf"),
            )
        )
        weights = trial
        current = t
    return OptimizationPlan(baseline_time=baseline, steps=plan)


def _shrunk(graph, analysis, weights: np.ndarray, obj: int, factor: float) -> np.ndarray:
    """Scale ``weights``' execution spans inside ``obj``'s holds by ``factor``.

    Unlike :meth:`EventGraph.shrunk_weights` this composes with already-
    modified weights: the overlap fraction is applied to the *current*
    weight of each execution edge.
    """
    from repro.core.dag import _overlap_with_holds

    out = weights.copy()
    holds_by_tid = {
        tid: sorted(tl.holds.get(obj, []), key=lambda h: h.start)
        for tid, tl in analysis.timelines.items()
    }
    starts_by_tid = {tid: [h.start for h in hs] for tid, hs in holds_by_tid.items()}
    for span in graph.exec_spans:
        holds = holds_by_tid.get(span.tid)
        if not holds:
            continue
        overlap = _overlap_with_holds(span.t0, span.t1, holds, starts_by_tid[span.tid])
        span_len = span.t1 - span.t0
        if overlap <= 0 or span_len <= 0:
            continue
        frac = overlap / span_len
        out[span.edge] = weights[span.edge] * (1 - frac + frac * factor)
    return out
