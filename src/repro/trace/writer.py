"""Trace serialization.

Two formats are supported:

``.clt`` (binary, default)
    ``CLTRACE1`` magic, an 8-byte little-endian header length, a JSON
    header (objects, thread names, metadata) and the raw numpy record
    block.  Compact and fast — the analog of the paper's flushed-on-exit
    binary trace file.

``.jsonl``
    A self-describing line-oriented format: one JSON header line followed
    by one JSON object per event.  Slow but diff-able and greppable.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any

from repro.errors import TraceFormatError
from repro.trace.events import EventType
from repro.trace.trace import ObjectInfo, Trace

__all__ = ["MAGIC", "write_trace", "header_dict"]

MAGIC = b"CLTRACE1"
_LEN_FMT = "<Q"

#: suffix -> format implied when ``fmt`` is not given.
_SUFFIX_FORMATS = {".clt": "clt", ".jsonl": "jsonl"}


def header_dict(trace: Trace) -> dict[str, Any]:
    """JSON-serializable header describing a trace's metadata."""
    return {
        "objects": {
            str(obj): {"kind": int(info.kind), "name": info.name}
            for obj, info in trace.objects.items()
        },
        "threads": {str(tid): name for tid, name in trace.threads.items()},
        "meta": trace.meta,
        "nevents": len(trace),
    }


def write_trace(trace: Trace, path: str | Path, fmt: str | None = None) -> Path:
    """Write a trace to ``path``.

    ``fmt`` is ``"clt"`` (binary) or ``"jsonl"``; when omitted it is
    inferred from the suffix.  Any *other* suffix without an explicit
    ``fmt`` raises: silently writing the binary format into ``x.json``
    produces a file that lies about its own content.  (Reading is
    unaffected — :func:`repro.trace.read_trace` sniffs magic bytes, not
    suffixes.)
    """
    path = Path(path)
    if fmt is None:
        fmt = _SUFFIX_FORMATS.get(path.suffix)
        if fmt is None:
            raise TraceFormatError(
                f"{path}: ambiguous suffix {path.suffix!r} — pass "
                "fmt='clt' or fmt='jsonl' to write_trace"
            )
    if fmt == "jsonl":
        _write_jsonl(trace, path)
    elif fmt == "clt":
        _write_binary(trace, path)
    else:
        raise TraceFormatError(f"unknown trace format {fmt!r}; expected 'clt' or 'jsonl'")
    return path


def _write_binary(trace: Trace, path: Path) -> None:
    header = json.dumps(header_dict(trace)).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack(_LEN_FMT, len(header)))
        fh.write(header)
        fh.write(trace.records.tobytes())


def _write_jsonl(trace: Trace, path: Path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"header": header_dict(trace)}) + "\n")
        for ev in trace:
            fh.write(
                json.dumps(
                    {
                        "seq": ev.seq,
                        "time": ev.time,
                        "tid": ev.tid,
                        "etype": EventType(ev.etype).name,
                        "obj": ev.obj,
                        "arg": ev.arg,
                    }
                )
                + "\n"
            )


def objects_from_header(raw: dict[str, Any]) -> dict[int, ObjectInfo]:
    """Rebuild the object table from a parsed JSON header."""
    from repro.trace.events import ObjectKind

    return {
        int(obj): ObjectInfo(obj=int(obj), kind=ObjectKind(entry["kind"]), name=entry["name"])
        for obj, entry in raw.get("objects", {}).items()
    }
