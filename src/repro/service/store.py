"""Content-addressed trace storage for the analysis service.

Uploaded traces are parsed (any supported container format), digested
with :func:`repro.trace.digest.trace_digest` — a *content* hash, so the
same execution uploaded as ``.clt`` and ``.jsonl`` deduplicates — and
persisted once in canonical binary form as ``<digest>.clt`` with a
``<digest>.meta.json`` sidecar.  Restarting the service rebuilds the
index from the sidecars; worker processes receive plain file paths.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ServiceError, TraceError
from repro.trace.digest import trace_digest
from repro.trace.reader import read_trace
from repro.trace.trace import Trace
from repro.trace.writer import write_trace

__all__ = ["TraceStore", "StoredTrace"]


@dataclass(frozen=True)
class StoredTrace:
    """Index entry for one stored trace."""

    digest: str
    path: Path
    name: str
    nevents: int
    nthreads: int
    duration: float
    size_bytes: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "name": self.name,
            "nevents": self.nevents,
            "nthreads": self.nthreads,
            "duration": self.duration,
            "size_bytes": self.size_bytes,
        }


class TraceStore:
    """Digest-keyed trace files under one root directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index: dict[str, StoredTrace] = {}
        self._lock = threading.Lock()
        self._rescan()

    # -- writes --------------------------------------------------------------

    def put_trace(self, trace: Trace, name: str | None = None) -> StoredTrace:
        """Store an in-memory trace; returns the (possibly existing) entry."""
        digest = trace_digest(trace)
        with self._lock:
            existing = self._index.get(digest)
            if existing is not None:
                return existing
            path = self.root / f"{digest}.clt"
            write_trace(trace, path)
            entry = StoredTrace(
                digest=digest,
                path=path,
                name=name or str(trace.meta.get("name", "")),
                nevents=len(trace),
                nthreads=len(trace.threads),
                duration=trace.duration,
                size_bytes=path.stat().st_size,
            )
            self._write_sidecar(entry)
            self._index[digest] = entry
            return entry

    def put_bytes(self, data: bytes, name: str | None = None) -> StoredTrace:
        """Store an uploaded trace blob (either supported format)."""
        if not data:
            raise ServiceError("empty upload is not a trace", status=400)
        tmp = self.root / f".upload-{threading.get_ident()}.tmp"
        try:
            tmp.write_bytes(data)
            try:
                trace = read_trace(tmp)
            except TraceError as exc:
                raise ServiceError(f"unparseable trace upload: {exc}", status=400) from exc
            return self.put_trace(trace, name=name)
        finally:
            tmp.unlink(missing_ok=True)

    def put_file(self, path: str | Path, name: str | None = None) -> StoredTrace:
        """Store a trace file already on local disk (CLI convenience)."""
        trace = read_trace(path)
        return self.put_trace(trace, name=name or Path(path).stem)

    # -- reads ---------------------------------------------------------------

    def get(self, digest: str) -> StoredTrace:
        with self._lock:
            entry = self._index.get(digest)
        if entry is None:
            raise ServiceError(f"no such trace: {digest}", status=404)
        return entry

    def resolve(self, digests: list[str] | tuple[str, ...]) -> list[str]:
        """Digests -> worker-ready file paths (404s on any unknown digest)."""
        return [str(self.get(d).path) for d in digests]

    def list(self) -> list[StoredTrace]:
        with self._lock:
            return sorted(self._index.values(), key=lambda e: e.digest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": len(self._index),
                "bytes": sum(e.size_bytes for e in self._index.values()),
            }

    # -- persistence ---------------------------------------------------------

    def _sidecar(self, digest: str) -> Path:
        return self.root / f"{digest}.meta.json"

    def _write_sidecar(self, entry: StoredTrace) -> None:
        blob = entry.to_dict()
        self._sidecar(entry.digest).write_text(json.dumps(blob), encoding="utf-8")

    def _rescan(self) -> None:
        for sidecar in self.root.glob("*.meta.json"):
            try:
                blob = json.loads(sidecar.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            path = self.root / f"{blob['digest']}.clt"
            if not path.exists():
                continue
            self._index[blob["digest"]] = StoredTrace(path=path, **blob)
