"""Protocol/scheduler what-if forecasts (ground-truth replay)."""

import pytest

from repro.core.analyzer import analyze
from repro.core.replay_whatif import (
    forecast_matrix,
    replay_identity,
    replay_whatif,
)
from repro.errors import AnalysisError, SimulationError
from repro.workloads import get_workload

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_trace():
    return make_micro_program().run().trace


@pytest.fixture(scope="module")
def ldap_trace():
    # The contended-rwlock golden config: reader preference re-ranks the
    # critical lock here (see tests/golden/test_golden_reports.py).
    wl = get_workload("openldap")(
        requests=150, nbuckets=2, write_prob=0.35,
        write_cost=0.12, lookup_cost=0.04,
    )
    return wl.run(nthreads=6, seed=1).trace


def test_identity_replay_reproduces_micro_exactly(micro_trace):
    result = replay_identity(micro_trace)
    assert result.completion_time == micro_trace.duration
    base = analyze(micro_trace).report
    replayed = analyze(result.trace, validate=False).report
    assert replayed.render(None) == base.render(None)


def test_fifo_forecast_is_a_noop_on_micro(micro_trace):
    fc = replay_whatif(micro_trace, protocol="fifo")
    assert fc.predicted_time == micro_trace.duration
    assert fc.predicted_speedup == 1.0
    assert not fc.reranked


def test_forecast_fields_and_render(micro_trace):
    fc = replay_whatif(micro_trace, protocol="pi")
    assert fc.protocol == "pi"
    assert fc.scheduler == "fifo"
    assert fc.baseline_time == micro_trace.duration
    assert fc.predicted_time > 0
    assert {d.name for d in fc.deltas} == {"L1", "L2"}
    text = fc.render()
    assert "protocol what-if" in text
    assert "pi" in text
    d = fc.to_dict()
    assert d["protocol"] == "pi"
    assert d["critical_lock"]["baseline"] in ("L1", "L2")
    assert len(d["locks"]) == 2


def test_reader_preference_reranks_ldap(ldap_trace):
    fc = replay_whatif(ldap_trace, protocol="reader-pref")
    assert fc.reranked
    assert fc.baseline_critical_lock == "entry_lock[0]"
    assert fc.predicted_critical_lock == "entry_lock[1]"
    assert fc.predicted_gain > 0.03  # measurably faster, not noise
    assert "(re-ranked)" in fc.render()


def test_priorities_keyed_by_tid_or_name(micro_trace):
    by_tid = replay_whatif(
        micro_trace, protocol="priority", priorities={1: 5}
    )
    names = dict(micro_trace.threads)
    name_of_1 = names[1]
    by_name = replay_whatif(
        micro_trace, protocol="priority", priorities={name_of_1: 5}
    )
    assert by_tid.predicted_time == by_name.predicted_time
    assert by_tid.params["priorities"] == {1: 5}


def test_rr_scheduler_with_quantum(micro_trace):
    fc = replay_whatif(micro_trace, scheduler="rr", quantum=0.5, cores=2)
    assert fc.scheduler == "rr"
    assert fc.params["quantum"] == 0.5
    assert fc.predicted_time > 0


def test_quantum_requires_rr(micro_trace):
    with pytest.raises(AnalysisError, match="quantum.*'rr'"):
        replay_whatif(micro_trace, scheduler="priority", quantum=0.5)


def test_recorded_protocol_takes_no_params(micro_trace):
    with pytest.raises(AnalysisError, match="recorded.*no parameters"):
        replay_whatif(micro_trace, protocol="recorded",
                      protocol_params={"x": 1})


def test_unknown_protocol_rejected(micro_trace):
    with pytest.raises(SimulationError, match="unknown lock protocol"):
        replay_whatif(micro_trace, protocol="bogus")


def test_forecast_matrix_shares_baseline(micro_trace):
    out = forecast_matrix(
        micro_trace, protocols=["fifo", "priority"], schedulers=["fifo"]
    )
    assert [fc.protocol for fc in out] == ["fifo", "priority"]
    assert out[0].baseline_report is out[1].baseline_report


def test_forecast_matrix_default_excludes_recorded(micro_trace):
    out = forecast_matrix(micro_trace, schedulers=["fifo"])
    assert all(fc.protocol != "recorded" for fc in out)
    assert len(out) == 8  # every registry protocol except "recorded"
