"""Greedy optimization planner."""

import pytest

from repro.core.analyzer import analyze
from repro.core.planner import plan_optimizations
from repro.errors import AnalysisError
from repro.workloads import Radiosity

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_analysis():
    return analyze(make_micro_program().run().trace)


def test_first_step_picks_l2(micro_analysis):
    plan = plan_optimizations(micro_analysis, steps=1, factor=0.5)
    assert plan.steps[0].lock_name == "L2"
    # Halving L2: chain becomes 4 x 1.25 = 5 but CS1 chain (8) + 1.25
    # now dominates: completion 9.25.
    assert plan.steps[0].predicted_time == pytest.approx(9.25)


def test_second_step_adapts_to_shifted_path(micro_analysis):
    plan = plan_optimizations(micro_analysis, steps=2, factor=0.5)
    # After L2 shrinks, the L1 chain dominates: step 2 must pick L1.
    assert [s.lock_name for s in plan.steps] == ["L2", "L1"]
    assert plan.steps[1].predicted_time < plan.steps[0].predicted_time


def test_cumulative_speedup_monotone(micro_analysis):
    plan = plan_optimizations(micro_analysis, steps=3, factor=0.5)
    speedups = [s.cumulative_speedup for s in plan.steps]
    assert speedups == sorted(speedups)
    assert plan.final_speedup == speedups[-1] > 1.0


def test_min_gain_stops_early(micro_analysis):
    plan = plan_optimizations(micro_analysis, steps=10, factor=0.99, min_gain=0.05)
    assert len(plan.steps) == 0  # a 1% shrink never gains 5%
    assert plan.final_speedup == 1.0


def test_invalid_parameters(micro_analysis):
    with pytest.raises(AnalysisError, match="steps"):
        plan_optimizations(micro_analysis, steps=0)
    with pytest.raises(AnalysisError, match="factor"):
        plan_optimizations(micro_analysis, factor=1.0)


def test_radiosity_plan_targets_tq0():
    analysis = analyze(Radiosity().run(nthreads=16, seed=0).trace)
    plan = plan_optimizations(analysis, steps=1, factor=0.0)
    assert plan.steps[0].lock_name == "tq[0].qlock"


def test_render(micro_analysis):
    text = plan_optimizations(micro_analysis, steps=2).render()
    assert "Optimization plan" in text
    assert "L2" in text
