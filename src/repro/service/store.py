"""Content-addressed trace storage for the analysis service.

Uploaded traces are parsed (any supported container format), digested
with :func:`repro.trace.digest.trace_digest` — a *content* hash, so the
same execution uploaded as ``.clt`` and ``.jsonl`` deduplicates — and
persisted once in canonical binary form as ``<digest>.clt`` with a
``<digest>.meta.json`` sidecar.  Restarting the service rebuilds the
index from the sidecars; worker processes receive plain file paths.

Durability goes through a :class:`~repro.service.backend.StorageBackend`.
The default (``backend=None``) is the original local layout — both
files directly under ``root``, now written tmp-then-``os.replace`` so a
crash can never leave a torn visible file.  With an object backend the
backend holds the durable copy and ``root`` becomes a scratch directory
where traces are *materialized* on demand (workers read local files).

Crash-safety contract, either backend:

* the sidecar is written strictly *after* the trace body, so a sidecar
  implies a complete body;
* an orphaned body (crash between the two writes) is reaped on the
  next rescan, as are stale ``.upload-*``/``.stage-*`` staging files;
* a sidecar whose schema this build cannot load (older/newer service)
  is skipped with a warning instead of crashing startup.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ServiceError, TraceError
from repro.service.backend import BackendMissing, LocalDiskBackend, StorageBackend
from repro.trace.digest import trace_digest
from repro.trace.reader import read_trace
from repro.trace.trace import Trace
from repro.trace.writer import write_trace

__all__ = ["TraceStore", "StoredTrace"]

log = logging.getLogger("repro.service")


@dataclass(frozen=True)
class StoredTrace:
    """Index entry for one stored trace."""

    digest: str
    path: Path
    name: str
    nevents: int
    nthreads: int
    duration: float
    size_bytes: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "name": self.name,
            "nevents": self.nevents,
            "nthreads": self.nthreads,
            "duration": self.duration,
            "size_bytes": self.size_bytes,
        }


class TraceStore:
    """Digest-keyed trace files behind a pluggable storage backend."""

    def __init__(self, root: str | Path, backend: StorageBackend | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Local scratch double-duty: with the default backend it *is*
        # the store; with an object backend it caches materializations.
        self.backend: StorageBackend = backend or LocalDiskBackend(self.root)
        self._remote = backend is not None
        self._index: dict[str, StoredTrace] = {}
        self._lock = threading.Lock()
        self._rescan()

    # -- writes --------------------------------------------------------------

    def put_trace(self, trace: Trace, name: str | None = None) -> StoredTrace:
        """Store an in-memory trace; returns the (possibly existing) entry."""
        digest = trace_digest(trace)
        with self._lock:
            existing = self._index.get(digest)
            if existing is not None:
                return existing
            path = self.root / f"{digest}.clt"
            # Stage under a unique dotted name: never visible to rescans,
            # never clobbered by a concurrent writer, reaped if orphaned.
            staging = self.root / f".stage-{uuid.uuid4().hex}.tmp"
            write_trace(trace, staging, fmt="clt")
            size = staging.stat().st_size
            entry = StoredTrace(
                digest=digest,
                path=path,
                name=name or str(trace.meta.get("name", "")),
                nevents=len(trace),
                nthreads=len(trace.threads),
                duration=trace.duration,
                size_bytes=size,
            )
            # Body first (atomically), sidecar second: a crash in between
            # leaves an orphan body the next rescan reaps — never a
            # sidecar pointing at a missing or torn body.
            self.backend.put_path(f"{digest}.clt", staging)
            if staging.exists():  # object backend uploaded a copy;
                os.replace(staging, path)  # keep it as the local materialization
            self._write_sidecar(entry)
            self._index[digest] = entry
            return entry

    def put_bytes(self, data: bytes, name: str | None = None) -> StoredTrace:
        """Store an uploaded trace blob (either supported format)."""
        if not data:
            raise ServiceError("empty upload is not a trace", status=400)
        # Unique per call: thread idents are recycled by the OS, so a
        # crashed upload's leftover must never collide with a live one.
        tmp = self.root / f".upload-{uuid.uuid4().hex}.tmp"
        try:
            tmp.write_bytes(data)
            try:
                trace = read_trace(tmp)
            except TraceError as exc:
                raise ServiceError(f"unparseable trace upload: {exc}", status=400) from exc
            return self.put_trace(trace, name=name)
        finally:
            tmp.unlink(missing_ok=True)

    def put_file(self, path: str | Path, name: str | None = None) -> StoredTrace:
        """Store a trace file already on local disk (CLI convenience)."""
        trace = read_trace(path)
        return self.put_trace(trace, name=name or Path(path).stem)

    # -- reads ---------------------------------------------------------------

    def get(self, digest: str) -> StoredTrace:
        with self._lock:
            entry = self._index.get(digest)
        if entry is None and self._remote:
            # Shared backend: a ring peer may have uploaded this trace
            # after our rescan.  Adopt its sidecar lazily.
            entry = self._adopt(digest)
        if entry is None:
            raise ServiceError(f"no such trace: {digest}", status=404)
        return entry

    def _adopt(self, digest: str) -> StoredTrace | None:
        try:
            blob = json.loads(self.backend.get(f"{digest}.meta.json").decode("utf-8"))
            entry = StoredTrace(path=self.root / f"{digest}.clt", **blob)
        except (BackendMissing, UnicodeDecodeError, json.JSONDecodeError, TypeError):
            return None
        with self._lock:
            return self._index.setdefault(digest, entry)

    def resolve(self, digests: list[str] | tuple[str, ...]) -> list[str]:
        """Digests -> worker-ready file paths (404s on any unknown digest)."""
        return [str(self._materialize(self.get(d))) for d in digests]

    def _materialize(self, entry: StoredTrace) -> Path:
        """Ensure the trace exists as a local file (object-backend fetch)."""
        if entry.path.exists():
            return entry.path
        try:
            data = self.backend.get(f"{entry.digest}.clt")
        except BackendMissing:
            raise ServiceError(
                f"trace {entry.digest} vanished from the storage backend",
                status=410,
            ) from None
        tmp = self.root / f".stage-{uuid.uuid4().hex}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, entry.path)
        return entry.path

    def list(self) -> list[StoredTrace]:
        with self._lock:
            return sorted(self._index.values(), key=lambda e: e.digest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": len(self._index),
                "bytes": sum(e.size_bytes for e in self._index.values()),
                "backend": self.backend.name,
            }

    # -- persistence ---------------------------------------------------------

    def _write_sidecar(self, entry: StoredTrace) -> None:
        blob = json.dumps(entry.to_dict()).encode("utf-8")
        self.backend.put(f"{entry.digest}.meta.json", blob)

    def _rescan(self) -> None:
        """Rebuild the index from sidecars; reap anything half-written.

        Called on startup (constructor).  Orphans are the residue of a
        crash at any point in :meth:`put_trace`/:meth:`put_bytes`:
        staging files, and trace bodies whose sidecar never landed.
        """
        # Stale staging files in the scratch dir (ours or a dead peer's).
        for stale in (*self.root.glob(".upload-*.tmp"), *self.root.glob(".stage-*.tmp")):
            stale.unlink(missing_ok=True)
        keys = set(self.backend.keys())
        seen_bodies: set[str] = set()
        for key in sorted(keys):
            if not key.endswith(".meta.json"):
                continue
            digest = key[: -len(".meta.json")]
            try:
                blob = json.loads(self.backend.get(key).decode("utf-8"))
            except (BackendMissing, OSError, UnicodeDecodeError, json.JSONDecodeError):
                log.warning("trace store: unreadable sidecar %s; skipping", key)
                continue
            if f"{digest}.clt" not in keys:
                # Sidecar without a body should be impossible (body is
                # written first) — tolerate it, but don't index it.
                log.warning("trace store: sidecar %s has no trace body", key)
                continue
            path = self.root / f"{digest}.clt"
            try:
                entry = StoredTrace(path=path, **blob)
            except TypeError:
                # Sidecar from an older/newer schema (missing or extra
                # keys).  Skipping keeps the service bootable; the trace
                # can be re-uploaded (same digest, fresh sidecar).
                log.warning(
                    "trace store: sidecar %s does not match this build's "
                    "schema; skipping", key,
                )
                continue
            self._index[digest] = entry
            seen_bodies.add(f"{digest}.clt")
        # Orphaned bodies: a crash after the body write but before the
        # sidecar.  Without a sidecar they are invisible forever — reap
        # them so the store cannot leak disk across crashes.
        for key in keys:
            if key.endswith(".clt") and key not in seen_bodies:
                log.warning("trace store: reaping orphaned trace body %s", key)
                self.backend.delete(key)
                (self.root / key).unlink(missing_ok=True)
