"""Paper Fig. 7: representative micro-benchmark execution timeline.

Regenerates the execution chart showing L1's contended critical sections
overlapped by the critical path while the L2 chain forms the path.
"""

import pytest

from repro.experiments import fig7

from conftest import run_once


@pytest.mark.benchmark(group="fig7")
def test_fig7(benchmark, show):
    result = run_once(benchmark, fig7.run, nthreads=4, width=96)
    show(result.render())
    # L2 appears once per thread on the path; L1 only via thread 0.
    assert result.values["l2_on_cp"] == 4
    assert result.values["l1_on_cp"] == 1
    chart = result.extra_text
    # Critical path marking present: both uppercase CS and lowercase
    # (off-path) sections exist.
    assert any(c.isupper() for c in chart)
    assert "b" in chart  # off-path L1 sections render lowercase
