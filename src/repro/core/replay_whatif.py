"""Protocol/scheduler what-if: replay a trace under an alternative policy.

The shrink/remove what-ifs (:mod:`repro.core.whatif`) answer "what if
this critical section were cheaper"; this module answers "what if the
*policy* were different" — priority inheritance instead of FIFO handoff,
a writer-preference rwlock, adaptive spinning, a round-robin scheduler.
Serialization bottlenecks are frequently policy artifacts rather than
inherent work, so these forecasts rank the *fixable* share of
contention.

The mechanism is ground-truth replay, not DAG estimation: the trace is
reconstructed into a schedulable program (:mod:`repro.replay`) and
re-executed on the simulator under the requested
:mod:`repro.sim.protocols` / :mod:`repro.sim.schedulers` policies.
Contention fully re-resolves — grant orders, wait times and even the
critical path's shape can change — and the resulting
:class:`ProtocolForecast` diffs the re-ranked critical-lock table
against the baseline analysis.

Trustworthiness rests on :func:`replay_identity`: replaying under the
``recorded`` identity protocol must reproduce the baseline completion
time and critical-lock ranking bit-identically (the 14th ``repro.check``
invariant enforces this for every generated trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.analyzer import analyze
from repro.core.report import AnalysisReport
from repro.errors import AnalysisError
from repro.replay import reconstruct
from repro.sim.engine import SimResult
from repro.sim.protocols import available_protocols, get_protocol
from repro.sim.schedulers import available_schedulers, get_scheduler
from repro.tables import format_table
from repro.trace.trace import Trace
from repro.units import format_duration, format_percent

__all__ = [
    "LockDelta",
    "ProtocolForecast",
    "replay_whatif",
    "replay_identity",
    "forecast_matrix",
]


@dataclass(frozen=True)
class LockDelta:
    """One lock's metrics before and after the policy change."""

    name: str
    base_rank: int
    new_rank: int
    base_cp_fraction: float
    new_cp_fraction: float
    base_wait_fraction: float
    new_wait_fraction: float
    base_cont_prob: float
    new_cont_prob: float

    @property
    def cp_delta(self) -> float:
        return self.new_cp_fraction - self.base_cp_fraction

    @property
    def wait_delta(self) -> float:
        return self.new_wait_fraction - self.base_wait_fraction


@dataclass(frozen=True)
class ProtocolForecast:
    """Ground-truth outcome of replaying a trace under another policy."""

    name: str
    protocol: str
    scheduler: str
    params: dict[str, Any]
    baseline_time: float
    predicted_time: float
    deltas: list[LockDelta]
    baseline_report: AnalysisReport = field(repr=False)
    predicted_report: AnalysisReport = field(repr=False)

    @property
    def predicted_speedup(self) -> float:
        if self.predicted_time <= 0:
            return float("inf")
        return self.baseline_time / self.predicted_time

    @property
    def predicted_gain(self) -> float:
        """Fractional completion-time reduction (negative = slower)."""
        if self.baseline_time <= 0:
            return 0.0
        return 1.0 - self.predicted_time / self.baseline_time

    @property
    def baseline_critical_lock(self) -> str | None:
        top = self.baseline_report.top_locks(1)
        return top[0].name if top else None

    @property
    def predicted_critical_lock(self) -> str | None:
        top = self.predicted_report.top_locks(1)
        return top[0].name if top else None

    @property
    def reranked(self) -> bool:
        """Did the policy change which lock tops the critical ranking?"""
        return self.baseline_critical_lock != self.predicted_critical_lock

    def render(self, n: int | None = 10) -> str:
        head = self.protocol
        if self.scheduler != "fifo":
            head += f" + {self.scheduler} scheduler"
        if self.params:
            head += " (" + ", ".join(f"{k}={v}" for k, v in self.params.items()) + ")"
        if self.reranked:
            crit = (
                f"critical lock: {self.baseline_critical_lock} -> "
                f"{self.predicted_critical_lock} (re-ranked)"
            )
        else:
            crit = f"critical lock: {self.baseline_critical_lock} (unchanged)"
        lines = [
            f"protocol what-if: {self.name or '(unnamed)'} under {head}",
            f"  baseline completion: {format_duration(self.baseline_time)}   "
            f"predicted: {format_duration(self.predicted_time)}   "
            f"speedup {self.predicted_speedup:.3f} "
            f"({self.predicted_gain:+.1%})",
            f"  {crit}",
        ]
        shown = self.deltas if n is None else self.deltas[:n]
        rows = [
            [
                d.name,
                f"{d.base_rank}->{d.new_rank}"
                if d.base_rank != d.new_rank
                else str(d.new_rank),
                format_percent(d.base_cp_fraction),
                format_percent(d.new_cp_fraction),
                f"{d.cp_delta:+.2%}",
                format_percent(d.base_wait_fraction),
                format_percent(d.new_wait_fraction),
                format_percent(d.base_cont_prob),
                format_percent(d.new_cont_prob),
            ]
            for d in shown
        ]
        table = format_table(
            ["Lock", "Rank", "CP %", "CP' %", "ΔCP", "Wait %", "Wait' %",
             "Cont %", "Cont' %"],
            rows,
            title="Critical-lock re-ranking (baseline -> predicted)",
        )
        return "\n".join(lines) + "\n\n" + table

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "protocol": self.protocol,
            "scheduler": self.scheduler,
            "params": dict(self.params),
            "baseline_time": self.baseline_time,
            "predicted_time": self.predicted_time,
            "predicted_speedup": self.predicted_speedup,
            "predicted_gain": self.predicted_gain,
            "reranked": self.reranked,
            "critical_lock": {
                "baseline": self.baseline_critical_lock,
                "predicted": self.predicted_critical_lock,
            },
            "locks": [
                {
                    "name": d.name,
                    "base_rank": d.base_rank,
                    "new_rank": d.new_rank,
                    "base_cp_fraction": d.base_cp_fraction,
                    "new_cp_fraction": d.new_cp_fraction,
                    "base_wait_fraction": d.base_wait_fraction,
                    "new_wait_fraction": d.new_wait_fraction,
                    "base_cont_prob": d.base_cont_prob,
                    "new_cont_prob": d.new_cont_prob,
                }
                for d in self.deltas
            ],
        }


def _resolve_cores(trace: Trace, cores: int | str | None) -> int | None:
    if cores == "auto":
        return trace.meta.get("cores")
    return cores  # type: ignore[return-value]


def replay_whatif(
    trace: Trace,
    protocol: str = "fifo",
    scheduler: str = "fifo",
    *,
    quantum: float | None = None,
    priorities: dict[int | str, int] | None = None,
    protocol_params: dict[str, Any] | None = None,
    cores: int | str | None = "auto",
    baseline: AnalysisReport | None = None,
) -> ProtocolForecast:
    """Replay ``trace`` under an alternative policy and diff the ranking.

    Parameters
    ----------
    protocol / scheduler:
        Registry names (:func:`repro.sim.available_protocols` /
        :func:`repro.sim.available_schedulers`).
    quantum:
        Round-robin compute quantum (``scheduler="rr"`` only).
    priorities:
        Base priorities for the priority-aware policies, keyed by the
        original trace tid or thread name; unlisted threads get 0.
    protocol_params:
        Keyword arguments for the protocol constructor (e.g.
        ``{"spin_limit": 0.1}`` for ``spin``,
        ``{"ceilings": {...}}`` for ``ceiling``).
    cores:
        ``"auto"`` (default) replays with the recorded core count; an
        int or ``None`` overrides it.
    baseline:
        Pass a precomputed baseline report to amortize analysis across a
        forecast matrix.
    """
    params = dict(protocol_params or {})
    if protocol == "recorded":
        proto: Any = "recorded"  # built by the replay layer from the trace
        if params:
            raise AnalysisError("the recorded protocol takes no parameters")
    else:
        proto = get_protocol(protocol, **params)
    sched_params: dict[str, Any] = {}
    if quantum is not None:
        if scheduler != "rr":
            raise AnalysisError(
                f"quantum only applies to the 'rr' scheduler, not {scheduler!r}"
            )
        sched_params["quantum"] = quantum
    sched = get_scheduler(scheduler, **sched_params)

    if baseline is None:
        baseline = analyze(trace, validate=False).report
    prog = reconstruct(trace).build(
        cores=_resolve_cores(trace, cores),
        seed=trace.meta.get("seed", 0),
        protocol=proto,
        scheduler=sched,
        priorities=priorities,
    )
    result = prog.run()
    predicted = analyze(result.trace, validate=False).report

    base_rank = {
        m.name: i + 1 for i, m in enumerate(baseline.top_locks(None))
    }
    base_locks = {m.name: m for m in baseline.locks.values()}
    deltas = []
    for i, m in enumerate(predicted.top_locks(None)):
        b = base_locks.get(m.name)
        deltas.append(
            LockDelta(
                name=m.name,
                base_rank=base_rank.get(m.name, 0),
                new_rank=i + 1,
                base_cp_fraction=b.cp_fraction if b else 0.0,
                new_cp_fraction=m.cp_fraction,
                base_wait_fraction=b.avg_wait_fraction if b else 0.0,
                new_wait_fraction=m.avg_wait_fraction,
                base_cont_prob=b.avg_cont_prob if b else 0.0,
                new_cont_prob=m.avg_cont_prob,
            )
        )
    shown_params = dict(params)
    if quantum is not None:
        shown_params["quantum"] = quantum
    if priorities:
        shown_params["priorities"] = dict(priorities)
    return ProtocolForecast(
        name=trace.meta.get("name", ""),
        protocol=protocol,
        scheduler=scheduler,
        params=shown_params,
        baseline_time=trace.duration,
        predicted_time=result.completion_time,
        deltas=deltas,
        baseline_report=baseline,
        predicted_report=predicted,
    )


def replay_identity(trace: Trace) -> SimResult:
    """Replay under the recorded identity protocol (fidelity check).

    Uses the trace's own core count and seed and preserves its name, so
    a faithful replay analyzes to a byte-identical report.
    """
    prog = reconstruct(trace).build(
        cores=trace.meta.get("cores"),
        seed=trace.meta.get("seed", 0),
        protocol="recorded",
        preserve_name=True,
    )
    return prog.run()


def forecast_matrix(
    trace: Trace,
    protocols: list[str] | None = None,
    schedulers: list[str] | None = None,
    **kwargs: Any,
) -> list[ProtocolForecast]:
    """Forecast every protocol x scheduler combination (shared baseline)."""
    if protocols is None:
        protocols = [p for p in available_protocols() if p != "recorded"]
    if schedulers is None:
        schedulers = available_schedulers()
    baseline = analyze(trace, validate=False).report
    out = []
    for proto in protocols:
        for sched in schedulers:
            out.append(
                replay_whatif(
                    trace, proto, sched, baseline=baseline, **kwargs
                )
            )
    return out
