"""Two-instance routing smoke test: real HTTP, one shared bucket.

Standalone script (CI runs it directly)::

    PYTHONPATH=src python benchmarks/smoke_routing.py

Boots TWO ``python -m repro serve`` subprocesses on ephemeral ports,
both on the object backend over one shared directory bucket, each
configured with the other as a ring peer.  Then, end to end:

* ``GET /ring`` on both nodes reports the same two-node ring;
* a trace uploaded to node A resolves on node B (shared namespace);
* jobs submitted through a :class:`ServiceClient` pointed at EITHER
  node land on the ring owner — the client follows the 307 redirect —
  and both entry points return the same report;
* the non-owner's metrics show the redirect happened.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.trace.writer import write_trace  # noqa: E402
from repro.workloads import SyntheticLocks  # noqa: E402


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_healthy(base: str, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=2.0) as resp:
                if json.loads(resp.read()).get("ok"):
                    return
        except Exception:
            time.sleep(0.2)
    raise RuntimeError(f"service at {base} never became healthy")


def spawn(port: int, peer_port: int, data_dir: Path, bucket: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--data-dir", str(data_dir),
            "--workers", "1",
            "--backend", "object",
            "--object-root", str(bucket),
            "--self-url", f"http://127.0.0.1:{port}",
            "--peers", f"http://127.0.0.1:{peer_port}",
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="smoke_routing_") as tmp:
        tmp_path = Path(tmp)
        bucket = tmp_path / "bucket"
        trace = SyntheticLocks(nlocks=4, ops_per_thread=200).run(
            nthreads=4, seed=7
        ).trace
        clt = write_trace(trace, tmp_path / "smoke.clt")

        ports = [free_port(), free_port()]
        urls = [f"http://127.0.0.1:{p}" for p in ports]
        procs = [
            spawn(ports[0], ports[1], tmp_path / "node-a", bucket),
            spawn(ports[1], ports[0], tmp_path / "node-b", bucket),
        ]
        try:
            for url in urls:
                wait_healthy(url)
            clients = [ServiceClient(url) for url in urls]

            rings = [c.ring() for c in clients]
            assert all(r["routing"] for r in rings), rings
            assert rings[0]["nodes"] == rings[1]["nodes"] == sorted(urls), rings
            print(f"ring: both nodes agree on {rings[0]['nodes']}")

            digest = clients[0].upload_trace(clt)
            other = clients[1].trace(digest)
            assert other["digest"] == digest, other
            print(f"store: trace {digest[:12]}... visible from both nodes")

            reports = []
            for client, url in zip(clients, urls):
                job_id = client.submit("analyze", digest, {"top": 5})
                reports.append(client.wait(job_id, timeout=120))
                served = client._served_by  # noqa: SLF001 — our own smoke test
                print(f"job via {url}: done (served by {served})")
            assert reports[0] == reports[1], "entry points disagree on the report"

            redirects = sum(
                sum(c.metrics()["jobs"]["redirected"].values()) for c in clients
            )
            assert redirects >= 1, "no redirect was ever issued"
            print(f"routing: {redirects} redirect(s) followed transparently")
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    print("ok: two instances share one namespace; the client follows the ring")
    return 0


if __name__ == "__main__":
    sys.exit(main())
