"""Job model, JobStore, and the picklable execute() facade."""

import pytest

from repro.core.analyzer import analyze
from repro.errors import ServiceError
from repro.service.jobs import JobSpec, JobStore, execute
from repro.trace import write_trace


@pytest.fixture
def micro_path(micro_trace, tmp_path):
    return str(write_trace(micro_trace, tmp_path / "micro.clt"))


class TestJobSpec:
    def test_cache_key_is_deterministic(self):
        a = JobSpec("analyze", ("d1",), {"top": 5})
        b = JobSpec("analyze", ("d1",), {"top": 5})
        assert a.cache_key() == b.cache_key()

    def test_cache_key_separates_kind_params_traces(self):
        base = JobSpec("analyze", ("d1",), {}).cache_key()
        assert JobSpec("forecast", ("d1",), {}).cache_key() != base
        assert JobSpec("analyze", ("d2",), {}).cache_key() != base
        assert JobSpec("analyze", ("d1",), {"top": 3}).cache_key() != base

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            JobSpec("frobnicate", ("d1",), {})

    def test_arity_enforced(self):
        with pytest.raises(ServiceError, match="takes 2 trace"):
            JobSpec("compare", ("d1",), {})
        with pytest.raises(ServiceError, match="takes 1 trace"):
            JobSpec("analyze", ("d1", "d2"), {})
        with pytest.raises(ServiceError, match="takes 0 trace"):
            JobSpec("check", ("d1",), {})


class TestJobStore:
    def test_lifecycle(self):
        store = JobStore()
        job = store.create(JobSpec("selftest", (), {}))
        assert job.state == "queued"
        store.mark_running(job.id)
        assert store.get(job.id).state == "running"
        store.mark_done(job.id, {"ok": True})
        done = store.get(job.id)
        assert done.state == "done"
        assert done.latency is not None
        assert done.to_dict()["state"] == "done"
        assert "result" not in done.to_dict()
        assert done.to_dict(include_result=True)["result"] == {"ok": True}

    def test_unknown_job_404(self):
        with pytest.raises(ServiceError, match="no such job") as ei:
            JobStore().get("nope")
        assert ei.value.status == 404

    def test_history_trims_finished_not_active(self):
        store = JobStore(max_finished=2)
        keep = store.create(JobSpec("selftest", (), {"i": -1}))  # stays queued
        done = [store.create(JobSpec("selftest", (), {"i": i})) for i in range(4)]
        for job in done:
            store.mark_done(job.id, {})
        assert store.get(keep.id).state == "queued"
        assert len(store.list()) <= 3  # 2 finished + the queued one


class TestExecute:
    def test_analyze_matches_in_process(self, micro_trace, micro_path):
        out = execute("analyze", [micro_path], {})
        expected = analyze(micro_trace).report.to_dict()
        assert out["locks"] == expected["locks"]
        assert out["critical_locks"][0]["name"] == "L2"

    def test_whatif(self, micro_path):
        out = execute("whatif", [micro_path], {"lock": "L2", "factor": 0.6})
        assert out["predicted_speedup"] == pytest.approx(1.263, abs=1e-3)

    def test_whatif_requires_lock(self, micro_path):
        with pytest.raises(ServiceError, match="params.lock"):
            execute("whatif", [micro_path], {})

    def test_whatif_protocol_identity_fifo(self, micro_trace, micro_path):
        out = execute("whatif_protocol", [micro_path], {"protocol": "fifo"})
        assert out["predicted_time"] == micro_trace.duration
        assert out["reranked"] is False

    def test_whatif_protocol_renders_and_serializes(self, micro_path):
        import json

        out = execute(
            "whatif_protocol", [micro_path],
            {"protocol": "pi", "priorities": {"1": 5}, "render": True},
        )
        assert out["protocol"] == "pi"
        assert "protocol what-if" in out["rendered"]
        json.dumps(out)

    def test_whatif_protocol_scheduler_quantum(self, micro_path):
        out = execute(
            "whatif_protocol", [micro_path],
            {"scheduler": "rr", "quantum": 0.5, "cores": 2},
        )
        assert out["scheduler"] == "rr"
        assert out["params"]["quantum"] == 0.5

    def test_compare_identical_traces(self, micro_path):
        out = execute("compare", [micro_path, micro_path], {})
        assert out["speedup"] == pytest.approx(1.0)

    def test_forecast(self, micro_path):
        out = execute("forecast", [micro_path], {"thread_counts": [8, 64]})
        assert out["locks"][0]["name"] == "L2"
        assert set(out["completion_time"]) == {"8", "64"}

    def test_unknown_kind(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            execute("nope", [], {})

    def test_check_runs_differential_seeds(self):
        out = execute("check", [], {"count": 2, "start": 7})
        assert out["ok"] is True
        assert out["seeds"] == 2
        assert out["start"] == 7
        assert out["failures"] == []

    def test_check_result_is_json_serializable(self):
        import json

        json.dumps(execute("check", [], {"count": 1}))

    def test_results_are_json_serializable(self, micro_path):
        import json

        for kind, params in [
            ("analyze", {}),
            ("whatif", {"lock": "L1"}),
            ("forecast", {}),
        ]:
            json.dumps(execute(kind, [micro_path], params))


class TestSampledAnalyze:
    def test_downsamples_full_trace_server_side(self, micro_trace, micro_path):
        out = execute(
            "sampled_analyze", [micro_path],
            {"rate": 1.0, "seed": 0, "render": True, "top": 3},
        )
        exact = analyze(micro_trace).report
        assert out["sampling"] == {"strategy": "unit-hash", "rate": 1.0, "seed": 0}
        ranked = out["critical_locks"]
        assert ranked[0]["name"] == "L2"
        # Rate 1.0 through the service is still bit-identical to exact.
        assert ranked[0]["cp_time_frac"] == exact.lock("L2").cp_fraction
        assert "statistical critical lock estimate" in out["rendered"]

    def test_accepts_pre_sampled_trace(self, micro_trace, tmp_path):
        from repro.sampling import downsample_trace

        sampled = downsample_trace(micro_trace, 0.5, seed=3)
        path = str(write_trace(sampled, tmp_path / "sampled.clt"))
        out = execute("sampled_analyze", [path], {})
        assert out["sampling"]["rate"] == 0.5
        for row in out["locks"].values():
            assert 0.0 <= row["ci_low"] <= row["ci_high"] <= 1.0

    def test_json_serializable(self, micro_path):
        import json

        json.dumps(execute("sampled_analyze", [micro_path], {"rate": 0.5}))
