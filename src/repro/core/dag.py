"""Forward event-graph formulation of the critical path.

An independent cross-check of the backward walk, and the engine behind
what-if predictions: events are nodes; edges are

* same-thread program order, weighted by the elapsed execution time
  (weight 0 across blocked intervals),
* wake dependencies (lock RELEASE → contended OBTAIN, last
  BARRIER_ARRIVE → BARRIER_DEPART, COND_SIGNAL → COND_WAKE,
  THREAD_EXIT → JOIN_END), weight 0,
* THREAD_CREATE → THREAD_START, weight 0.

The longest weighted path to the last event equals the critical path
length; re-weighting execution edges (e.g. shrinking the spans during
which a given lock is held) and recomputing yields the paper's
"expected speedup" — including the path shift the paper observes when an
optimized lock stops dominating (§V.D.3).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import HoldInterval, ThreadTimeline
from repro.core.segments import build_timelines
from repro.core.wakers import WakerTable, resolve_wakers
from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["EventGraph", "ExecSpan", "build_event_graph"]


@dataclass(frozen=True, slots=True)
class ExecSpan:
    """An execution-weighted edge: thread ``tid`` ran from ``t0`` to ``t1``."""

    edge: int  # index into the edge arrays
    tid: int
    t0: float
    t1: float


@dataclass
class EventGraph:
    """Weighted DAG over trace events (see module docstring).

    ``edge_src``/``edge_dst`` index into trace record positions;
    ``edge_w`` are base weights; ``exec_spans`` identifies which edges
    carry execution time (candidates for what-if re-weighting);
    ``wake_edges`` maps lock-wake edges to their object (candidates for
    contention-elimination what-ifs).
    """

    trace: Trace
    timelines: dict[int, ThreadTimeline]
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_w: np.ndarray
    exec_spans: list[ExecSpan] = field(default_factory=list)
    wake_edges: list[tuple[int, int]] = field(default_factory=list)  # (edge, obj)
    # Record positions of root THREAD_START events (the longest-path
    # sources).  Computed once by :func:`build_event_graph`; graphs built
    # by hand get it lazily on first use.
    source_pos: np.ndarray | None = None

    @property
    def n_events(self) -> int:
        return len(self.trace)

    @property
    def sources(self) -> np.ndarray:
        """Root THREAD_START positions (cached; see ``source_pos``)."""
        if self.source_pos is None:
            self.source_pos = _root_start_positions(self.trace)
        return self.source_pos

    def longest_dist(
        self,
        weights: np.ndarray | None = None,
        skip_edges: "set[int] | None" = None,
    ) -> np.ndarray:
        """Longest-path distance to every event (source-anchored).

        THREAD_START events of root threads are sources with distance
        equal to their offset from the trace start, so distances read as
        "earliest completion time since trace start".
        """
        w = self.edge_w if weights is None else weights
        records = self.trace.records
        n = self.n_events
        dist = np.full(n, -np.inf)
        times = records["time"]
        start = self.trace.start_time
        for pos in self.sources:
            dist[pos] = times[pos] - start
        # Edges were appended with strictly increasing dst, so one ordered
        # sweep relaxes the whole DAG.
        src, dst = self.edge_src, self.edge_dst
        for e in range(len(src)):
            if skip_edges and e in skip_edges:
                continue
            s, d = src[e], dst[e]
            cand = dist[s] + w[e]
            if cand > dist[d]:
                dist[d] = cand
        return dist

    def completion_time(
        self,
        weights: np.ndarray | None = None,
        skip_edges: "set[int] | None" = None,
    ) -> float:
        """Longest-path length to the end of the execution.

        Traces with no THREAD_EXIT events (truncated captures) fall back
        to the max distance over all events, so what-if and forecasting
        on partial traces report finite times instead of zero.
        """
        dist = self.longest_dist(weights, skip_edges)
        exits = np.flatnonzero(self.trace.records["etype"] == int(EventType.THREAD_EXIT))
        if len(exits) == 0:
            finite = dist[np.isfinite(dist)]
            return float(np.max(finite)) if len(finite) else 0.0
        return float(np.max(dist[exits]))

    def lock_wake_edge_set(self, obj: int) -> set[int]:
        """Edge indices of ``obj``'s contended-handoff dependencies."""
        return {e for e, o in self.wake_edges if o == obj}

    def critical_events(
        self,
        weights: np.ndarray | None = None,
        dist: np.ndarray | None = None,
    ) -> list[int]:
        """Record positions of one longest path, in forward order.

        ``dist`` lets callers that already ran :meth:`longest_dist` — or
        an equivalent recomputation, e.g. in rescaled time units — reuse
        it instead of paying the O(E) sweep again.  A supplied ``dist``
        only has to be consistent with the weights up to float
        tolerance; see the backtracking comparison below.
        """
        w = self.edge_w if weights is None else weights
        if dist is None:
            dist = self.longest_dist(weights)
        # Group incoming edges per destination for backtracking.
        incoming: dict[int, list[int]] = {}
        for e in range(len(self.edge_dst)):
            incoming.setdefault(int(self.edge_dst[e]), []).append(e)
        exits = np.flatnonzero(self.trace.records["etype"] == int(EventType.THREAD_EXIT))
        if len(exits) == 0:  # truncated trace: end at the farthest event
            exits = np.flatnonzero(np.isfinite(dist))
            if len(exits) == 0:
                return []
        pos = int(exits[np.argmax(dist[exits])])
        path = [pos]
        while True:
            best_edge = None
            for e in incoming.get(pos, ()):
                s = int(self.edge_src[e])
                # Tolerant comparison: an independently-derived distance
                # array (a caller-supplied ``dist``, e.g. recomputed in
                # rescaled time units) accumulates float error along long
                # edge chains, leaving the true predecessor a few ulps
                # off dist[pos]; exact equality would truncate the walk.
                if math.isclose(
                    float(dist[s]) + float(w[e]), float(dist[pos]),
                    rel_tol=1e-9, abs_tol=1e-12,
                ) and (
                    best_edge is None or dist[s] > dist[int(self.edge_src[best_edge])]
                ):
                    best_edge = e
            if best_edge is None:
                break
            pos = int(self.edge_src[best_edge])
            path.append(pos)
        path.reverse()
        return path

    def shrunk_weights(self, obj: int, factor: float) -> np.ndarray:
        """Edge weights with lock ``obj``'s critical sections scaled by ``factor``.

        Execution time that overlaps a hold of ``obj`` is multiplied by
        ``factor`` (0 removes the critical sections entirely, 0.5 halves
        them); all other time is untouched.
        """
        if factor < 0:
            raise ValueError(f"shrink factor must be >= 0, got {factor}")
        weights = self.edge_w.copy()
        holds_by_tid: dict[int, list[HoldInterval]] = {
            tid: sorted(tl.holds.get(obj, []), key=lambda h: h.start)
            for tid, tl in self.timelines.items()
        }
        starts_by_tid = {
            tid: [h.start for h in holds] for tid, holds in holds_by_tid.items()
        }
        for span in self.exec_spans:
            holds = holds_by_tid.get(span.tid)
            if not holds:
                continue
            overlap = _overlap_with_holds(
                span.t0, span.t1, holds, starts_by_tid[span.tid]
            )
            if overlap > 0:
                weights[span.edge] -= (1.0 - factor) * overlap
        return weights

    def to_networkx(self):  # pragma: no cover - convenience for users
        """Export as a ``networkx.DiGraph`` (nodes are record positions)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n_events))
        for e in range(len(self.edge_src)):
            g.add_edge(
                int(self.edge_src[e]), int(self.edge_dst[e]), weight=float(self.edge_w[e])
            )
        return g


def _root_start_positions(trace: Trace) -> np.ndarray:
    """Record positions of THREAD_START events of root (uncreated) threads.

    Hoisted out of :meth:`EventGraph.longest_dist` so repeated what-if
    re-weighting calls don't rebuild per-event objects every time.
    """
    records = trace.records
    etypes = records["etype"]
    create_pos = np.flatnonzero(etypes == int(EventType.THREAD_CREATE))
    created = set(records["arg"][create_pos].tolist())
    start_pos = np.flatnonzero(etypes == int(EventType.THREAD_START))
    tids = records["tid"][start_pos]
    return start_pos[[int(t) not in created for t in tids]]


def _overlap_with_holds(
    t0: float, t1: float, holds: list[HoldInterval], starts: list[float]
) -> float:
    """Total overlap of [t0, t1] with a sorted, disjoint hold list."""
    total = 0.0
    i = max(0, bisect_right(starts, t0) - 1)
    while i < len(holds) and holds[i].start < t1:
        h = holds[i]
        total += max(0.0, min(t1, h.end) - max(t0, h.start))
        i += 1
    return total


def build_event_graph(
    trace: Trace,
    timelines: dict[int, ThreadTimeline] | None = None,
    wakers: WakerTable | None = None,
) -> EventGraph:
    """Construct the event DAG from a trace."""
    if wakers is None:
        wakers = resolve_wakers(trace)
    if timelines is None:
        timelines = build_timelines(trace, wakers)

    records = trace.records
    n = len(records)
    seqs = records["seq"]
    pos_of_seq = {int(s): i for i, s in enumerate(seqs)}

    # Wake events whose preceding same-thread span was a blocked wait.
    wait_wake_seqs: set[int] = set()
    for tl in timelines.values():
        for w in tl.waits:
            wait_wake_seqs.add(w.wake_seq)

    edge_src: list[int] = []
    edge_dst: list[int] = []
    edge_w: list[float] = []
    exec_spans: list[ExecSpan] = []
    wake_edges: list[tuple[int, int]] = []

    last_pos_of_tid: dict[int, int] = {}
    for pos in range(n):
        row = records[pos]
        tid = int(row["tid"])
        seq = int(row["seq"])
        time = float(row["time"])
        etype = EventType(int(row["etype"]))

        prev = last_pos_of_tid.get(tid)
        if prev is not None:
            t_prev = float(records["time"][prev])
            if seq in wait_wake_seqs:
                edge_src.append(prev)
                edge_dst.append(pos)
                edge_w.append(0.0)
            else:
                edge_src.append(prev)
                edge_dst.append(pos)
                edge_w.append(time - t_prev)
                exec_spans.append(
                    ExecSpan(edge=len(edge_w) - 1, tid=tid, t0=t_prev, t1=time)
                )
        last_pos_of_tid[tid] = pos

        info = wakers.wakes.get(seq)
        if info is not None:
            waker_pos = pos_of_seq.get(info.waker_seq)
            if waker_pos is not None:
                edge_src.append(waker_pos)
                edge_dst.append(pos)
                edge_w.append(0.0)
                if etype == EventType.OBTAIN:
                    wake_edges.append((len(edge_w) - 1, int(row["obj"])))
        if etype == EventType.THREAD_START:
            creation = wakers.creations.get(tid)
            if creation is not None:
                creator_pos = pos_of_seq.get(creation.waker_seq)
                if creator_pos is not None:
                    edge_src.append(creator_pos)
                    edge_dst.append(pos)
                    edge_w.append(0.0)

    return EventGraph(
        trace=trace,
        timelines=timelines,
        edge_src=np.asarray(edge_src, dtype=np.int64),
        edge_dst=np.asarray(edge_dst, dtype=np.int64),
        edge_w=np.asarray(edge_w, dtype=np.float64),
        exec_spans=exec_spans,
        wake_edges=wake_edges,
        source_pos=_root_start_positions(trace),
    )
