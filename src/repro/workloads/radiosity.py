"""Radiosity workload model (SPLASH-2 ``-batch -largeroom``).

The paper's main case study (§V.D).  The synchronization skeleton of
Radiosity's parallel phase:

* one task queue per thread, each guarded by ``tq[i].qlock``; the master
  seeds the initial visibility tasks into ``tq[0]``, and an idle thread
  steals from ``tq[0]`` first (that is where work accumulates), so
  ``tq[0].qlock`` contention grows with the thread count — the effect
  behind paper Figs. 9 and 10;
* every task allocates interaction records from a shared free list
  guarded by ``freeInter`` — frequent, small critical sections;
* an assortment of small locks for model/patch/element free lists and
  global accumulators (Radiosity "uses 14 locks to protect different
  shared data structures");
* iterations end at the ``pbar`` barrier, whose bookkeeping counter is
  protected by ``pbar_lock``.

``two_lock_queues=True`` applies the paper's optimization (§V.D.3):
every task queue becomes a Michael-Scott two-lock queue
(``tq[i].q_head_lock`` / ``tq[i].q_tail_lock``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.sim.program import Program
from repro.sim import syscalls as sc
from repro.workloads.base import Workload, register
from repro.workloads.queues import make_queue

__all__ = ["Radiosity"]

#: Small shared-structure locks beyond the queues (names from the paper /
#: SPLASH-2 sources).
_MISC_LOCKS = (
    "freeInter",
    "avg_radiosity_lock",
    "cost_sum_lock",
    "free_patch_lock",
    "free_element_lock",
    "free_elemvertex_lock",
    "free_edge_lock",
    "model_lock",
    "index_lock",
    "global_rad_lock",
    "check_lock",
)


@dataclass
class _Task:
    """A visibility/refinement task: compute cost and children to spawn."""

    cost: float
    children: int


@dataclass
class _State:
    """Shared state of one Radiosity run."""

    queues: list[Any]
    locks: dict[str, Any]
    pbar: Any
    pbar_lock: Any
    in_flight: int = 0
    spawn_budget: int = 0


@register
class Radiosity(Workload):
    """Task-queue-with-stealing skeleton of SPLASH-2 Radiosity."""

    name = "radiosity"

    def __init__(
        self,
        total_tasks: int = 640,
        iterations: int = 3,
        task_cost: float = 1.0,
        q_op_cost: float = 0.048,
        interactions_per_task: int = 4,
        free_op_cost: float = 0.006,
        misc_lock_prob: float = 0.15,
        misc_op_cost: float = 0.008,
        spawn_factor: float = 0.8,
        child_to_master_prob: float = 0.5,
        idle_backoff: float = 0.02,
        two_lock_queues: bool = False,
    ):
        self.total_tasks = total_tasks
        self.iterations = iterations
        self.task_cost = task_cost
        self.q_op_cost = q_op_cost
        self.interactions_per_task = interactions_per_task
        self.free_op_cost = free_op_cost
        self.misc_lock_prob = misc_lock_prob
        self.misc_op_cost = misc_op_cost
        self.spawn_factor = spawn_factor
        self.child_to_master_prob = child_to_master_prob
        self.idle_backoff = idle_backoff
        self.two_lock_queues = two_lock_queues

    # -- construction ---------------------------------------------------------

    def build(self, prog: Program, nthreads: int) -> None:
        queues = [
            make_queue(prog, f"tq[{i}]", self.q_op_cost, self.two_lock_queues)
            for i in range(nthreads)
        ]
        locks = {name: prog.mutex(name) for name in _MISC_LOCKS}
        state = _State(
            queues=queues,
            locks=locks,
            pbar=prog.barrier(nthreads, "pbar"),
            pbar_lock=prog.mutex("pbar_lock"),
        )
        prog.spawn_workers(nthreads, self._worker, state, nthreads)

    # -- thread body -----------------------------------------------------------

    def _seed_iteration(self, state: _State, nthreads: int, rng) -> None:
        """Master pre-fills tq[0] (no lock traffic: happens at a barrier)."""
        total = self.total_tasks
        q0 = state.queues[0]
        for _ in range(total):
            cost = float(rng.exponential(self.task_cost))
            q0._items.append(_Task(cost=cost, children=0))
        state.in_flight = total
        state.spawn_budget = int(total * self.spawn_factor)

    def _worker(self, env, wid: int, state: _State, nthreads: int):
        rng = env.rng
        for _ in range(self.iterations):
            if wid == 0:
                self._seed_iteration(state, nthreads, rng)
            # All threads wait for the seeded queue before working.
            yield env.barrier_wait(state.pbar)
            yield from self._process_until_drained(env, wid, state, nthreads)
            # Iteration epilogue: barrier bookkeeping under pbar_lock,
            # then the barrier itself (paper's pbar usage).
            yield env.acquire(state.pbar_lock)
            yield env.compute(self.misc_op_cost)
            yield env.release(state.pbar_lock)
            yield env.barrier_wait(state.pbar)

    def _process_until_drained(
        self, env, wid: int, state: _State, nthreads: int
    ) -> Generator[sc.Request, Any, None]:
        rng = env.rng
        backoff = self.idle_backoff
        while True:
            task = yield from self._find_task(env, wid, state, nthreads)
            if task is None:
                if state.in_flight == 0:
                    return
                yield env.yield_core()  # sched_yield: let ready threads run
                yield env.compute(backoff)
                backoff = min(backoff * 2, self.task_cost)
                continue
            backoff = self.idle_backoff
            yield from self._process_task(env, wid, state, task, rng, nthreads)

    def _find_task(self, env, wid: int, state: _State, nthreads: int):
        """Own queue first, then steal from tq[0], then scan the others."""
        task = yield from state.queues[wid].get(env)
        if task is not None:
            return task
        if wid != 0 and len(state.queues[0]) > 0:
            task = yield from state.queues[0].get(env)
            if task is not None:
                return task
        for offset in range(1, nthreads):
            victim = (wid + offset) % nthreads
            if victim == 0 or victim == wid:
                continue
            if len(state.queues[victim]) == 0:
                continue  # peeking length is lock-free in SPLASH-2 too
            task = yield from state.queues[victim].get(env)
            if task is not None:
                return task
        return None

    def _process_task(
        self, env, wid: int, state: _State, task: _Task, rng, nthreads: int
    ) -> Generator[sc.Request, Any, None]:
        # Visibility computation interleaved with interaction allocation
        # from the freeInter free list.
        slices = max(1, self.interactions_per_task)
        slice_cost = task.cost / slices
        free_inter = state.locks["freeInter"]
        for _ in range(slices):
            yield env.compute(slice_cost)
            yield env.acquire(free_inter)
            yield env.compute(self.free_op_cost)
            yield env.release(free_inter)
        # Occasional updates of global accumulators / free lists.
        if rng.random() < self.misc_lock_prob:
            name = _MISC_LOCKS[1 + int(rng.integers(len(_MISC_LOCKS) - 1))]
            lock = state.locks[name]
            yield env.acquire(lock)
            yield env.compute(self.misc_op_cost)
            yield env.release(lock)
        # Spawn refinement children while the budget lasts.
        nchildren = 0
        if state.spawn_budget > 0:
            nchildren = int(rng.poisson(0.9))
            nchildren = min(nchildren, state.spawn_budget)
            state.spawn_budget -= nchildren
        for _ in range(nchildren):
            child = _Task(cost=float(rng.exponential(self.task_cost)), children=0)
            state.in_flight += 1
            if rng.random() < self.child_to_master_prob:
                yield from state.queues[0].put(env, child)
            else:
                yield from state.queues[wid].put(env, child)
        state.in_flight -= 1
