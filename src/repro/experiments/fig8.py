"""Paper Fig. 8 — the two most critical locks across all applications.

For every application in the case study, report CP Time % (TYPE 1) and
Wait Time % (TYPE 2) of the two locks with the highest CP Time.  The
paper's findings to reproduce:

* Radiosity ``tq[0].qlock``, Raytrace ``mem`` and TSP ``Qlock`` are
  badly underestimated by Wait Time;
* UTS's ``stackLock[i]`` sits on ~5% of the critical path while its
  wait time claims it is harmless;
* OpenLDAP shows no significant critical section bottleneck at all.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.experiments.harness import ExperimentResult, experiment
from repro.units import format_percent
from repro.workloads.base import Workload
from repro.workloads.ldapserver import LDAPServer
from repro.workloads.radiosity import Radiosity
from repro.workloads.raytrace import Raytrace
from repro.workloads.tsp import TSP
from repro.workloads.uts import UTS
from repro.workloads.volrend import Volrend
from repro.workloads.water import WaterNSquared

__all__ = ["run", "default_suite"]


def default_suite(nthreads: int = 24) -> list[tuple[Workload, int]]:
    """The paper's application set with its thread counts (OpenLDAP: 16)."""
    return [
        (Radiosity(), nthreads),
        (WaterNSquared(), nthreads),
        (Volrend(), nthreads),
        (Raytrace(), nthreads),
        (TSP(), nthreads),
        (UTS(), nthreads),
        (LDAPServer(), 16),
    ]


@experiment("fig8")
def run(nthreads: int = 24, seed: int = 0) -> ExperimentResult:
    rows = []
    values: dict[str, dict] = {}
    for wl, n in default_suite(nthreads):
        res = wl.run(nthreads=n, seed=seed)
        analysis = analyze(res.trace)
        top2 = analysis.report.top_locks(2)
        values[wl.name] = {}
        for rank, m in enumerate(top2, start=1):
            rows.append(
                [
                    wl.name if rank == 1 else "",
                    m.name,
                    format_percent(m.cp_fraction),
                    format_percent(m.avg_wait_fraction),
                ]
            )
            values[wl.name][m.name] = {
                "cp_fraction": m.cp_fraction,
                "wait_fraction": m.avg_wait_fraction,
            }
    return ExperimentResult(
        exp_id="fig8",
        title=f"Two most critical locks per application ({nthreads} threads; OpenLDAP 16)",
        headers=["Application", "Lock", "CP Time %", "Wait Time %"],
        rows=rows,
        notes=[
            "paper: Wait Time underestimates tq[0].qlock (Radiosity), mem "
            "(Raytrace), Qlock (TSP ~68% CP); UTS stackLock ~5% CP at near-zero "
            "wait; OpenLDAP has no significant lock bottleneck",
        ],
        values=values,
    )
