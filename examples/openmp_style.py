#!/usr/bin/env python
"""Critical lock analysis on an OpenMP-style program.

The paper notes its method applies to any lock-based threading model,
OpenMP included (footnote 1).  This example renders a Mandelbrot-like
image with ``omp parallel for``: static scheduling suffers from load
imbalance, dynamic scheduling fixes it — but its chunk-dispatch lock
shows up in the analysis exactly where you'd expect, and shrinking the
chunk size trades imbalance for schedule-lock pressure.

Run:  python examples/openmp_style.py
"""

from repro import Program, analyze
from repro.sim.omp import OpenMP
from repro.tables import format_table


def render_rows(schedule: str, chunk: int, nthreads: int = 8, rows: int = 96):
    """One frame: per-row cost is wildly uneven (escape-time iteration)."""
    prog = Program(name=f"mandel-{schedule}-c{chunk}", seed=1)
    omp = OpenMP(prog, nthreads=nthreads)
    hist = []

    def row_body(env, row, ctx):
        # Rows near the "set" take far longer (synthetic cost profile).
        cost = 0.02 + 0.4 * max(0.0, 1.0 - abs(row - rows / 2) / (rows / 8))
        yield env.compute(cost)
        yield from ctx.critical(env, "histogram", lambda: hist.append(row), cost=0.002)

    omp.parallel_for(range(rows), row_body, schedule=schedule, chunk=chunk)
    result = prog.run()
    assert len(hist) == rows
    return result


def main() -> None:
    configs = [("static", 4), ("dynamic", 8), ("dynamic", 1)]
    table = []
    for schedule, chunk in configs:
        result = render_rows(schedule, chunk)
        analysis = analyze(result.trace)
        sched_locks = [
            m for m in analysis.report.locks.values() if "schedule_lock" in m.name
        ]
        sched_cp = max((m.cp_fraction for m in sched_locks), default=0.0)
        crit = analysis.report.lock("omp_critical:histogram")
        table.append(
            [
                f"{schedule} chunk={chunk}",
                f"{result.completion_time:.3f}",
                f"{sched_cp:.2%}",
                f"{crit.cp_fraction:.2%}",
            ]
        )
    print(format_table(
        ["Schedule", "Completion", "schedule_lock CP %", "critical CP %"],
        table,
        title="OpenMP scheduling under critical lock analysis",
    ))
    print()
    print("dynamic beats static on imbalanced rows; chunk=1 pays for it in")
    print("schedule-lock critical-path share — visible only with CP metrics.")


if __name__ == "__main__":
    main()
