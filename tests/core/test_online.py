"""Online streaming analyzer: exact TYPE 2 counters, criticality heuristic."""

import pytest

from repro.core.analyzer import analyze
from repro.core.online import OnlineAnalyzer
from repro.workloads import Radiosity, SyntheticLocks

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro():
    trace = make_micro_program().run().trace
    return trace, analyze(trace), OnlineAnalyzer().observe_all(trace)


def test_type2_counters_match_offline(micro):
    trace, offline, online = micro
    for name in ("L1", "L2"):
        m = offline.report.lock(name)
        ls = online.stats(m.obj)
        assert ls.invocations == m.total_invocations
        assert ls.contended == m.contended_invocations
        assert ls.wait_time == pytest.approx(m.total_wait_time)
        assert ls.hold_time == pytest.approx(m.total_hold_time)
        assert ls.cont_prob == pytest.approx(m.avg_cont_prob)


def test_heuristic_ranks_l2_first(micro):
    _, _, online = micro
    ranking = [ls.name for ls in online.ranking()]
    assert ranking[0] == "L2"
    # while the classical wait ranking still picks L1 (the paper's trap):
    assert online.ranking_by_wait()[0].name == "L1"


def test_chain_lengths_exact(micro):
    trace, _, online = micro
    # L2: 4 dependent holds of 2.5 = 10; L1: chain of 4 holds of 2.0 = 8.
    l2 = next(ls for ls in online.ranking() if ls.name == "L2")
    l1 = next(ls for ls in online.ranking() if ls.name == "L1")
    assert l2.max_chain_time == pytest.approx(10.0)
    assert l1.max_chain_time == pytest.approx(8.0)


def test_chain_breaks_on_idle_lock():
    from repro.sim import Program

    prog = Program()
    lock = prog.mutex("L")

    def body(env, i):
        # Spaced-out, uncontended critical sections: no dependent chain.
        yield env.compute(1.0 + i * 5.0)
        yield env.acquire(lock)
        yield env.compute(0.5)
        yield env.release(lock)

    prog.spawn_workers(3, body)
    trace = prog.run().trace
    online = OnlineAnalyzer().observe_all(trace)
    ls = online.stats(0)
    assert ls.contended == 0
    assert ls.max_chain_time == pytest.approx(0.5)  # chains never grow


def test_online_agrees_with_cp_ranking_on_radiosity():
    trace = Radiosity(total_tasks=80, iterations=1).run(nthreads=8, seed=2).trace
    offline_top = analyze(trace).report.top_locks(1)[0].name
    online_top = OnlineAnalyzer().observe_all(trace).ranking()[0].name
    assert online_top == offline_top


def test_incremental_equals_batch():
    trace = SyntheticLocks(ops_per_thread=20).run(nthreads=4, seed=8).trace
    batch = OnlineAnalyzer().observe_all(trace)
    inc = OnlineAnalyzer(trace)
    for ev in trace:
        inc.observe(ev)
    for obj in (info.obj for info in trace.locks):
        if obj in batch._locks:
            assert inc.stats(obj).wait_time == pytest.approx(batch.stats(obj).wait_time)
            assert inc.stats(obj).max_chain_time == pytest.approx(
                batch.stats(obj).max_chain_time
            )


def test_render(micro):
    _, _, online = micro
    text = online.render()
    assert "Max dependent chain" in text
    assert "L2" in text


def test_chain_resets_on_equal_timestamp_uncontended_obtain():
    # Virtual time routinely lands an uncontended OBTAIN at the exact
    # timestamp of the previous RELEASE.  The lock was free — nobody
    # waited — so the dependent chain must reset; `>` instead of `>=` in
    # the reset condition wrongly fused such back-to-back holds into one
    # chain.
    from repro.trace import TraceBuilder

    b = TraceBuilder()
    lock = b.mutex("L")
    t0 = b.thread("T0")
    t1 = b.thread("T1")
    t0.start(at=0.0)
    t1.start(at=0.0)
    # T0 holds [0, 1]; T1 obtains uncontended at exactly 1.0, holds [1, 2].
    t0.critical_section(lock, acquire=0.0, obtain=0.0, release=1.0)
    t1.critical_section(lock, acquire=1.0, obtain=1.0, release=2.0)
    t0.exit(at=1.0)
    t1.exit(at=2.0)
    trace = b.build()

    online = OnlineAnalyzer().observe_all(trace)
    ls = online.stats(lock)
    assert ls.contended == 0
    # two independent 1.0-long holds, not one fused 2.0 chain
    assert ls.max_chain_time == pytest.approx(1.0)
