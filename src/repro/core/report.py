"""Human-readable analysis reports.

:class:`AnalysisReport` bundles the critical path, the per-lock TYPE 1
and TYPE 2 statistics and per-thread breakdowns, with ``render*`` methods
producing the tables of the paper's tool output and ``to_dict`` for
machine consumption (CLI ``--json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.critical_path import CriticalPath
from repro.core.metrics import LockMetrics, ThreadStats
from repro.errors import AnalysisError
from repro.tables import format_table
from repro.units import format_duration, format_percent

__all__ = ["AnalysisReport"]


@dataclass
class AnalysisReport:
    """Report over one trace's critical lock analysis."""

    name: str
    nthreads: int
    duration: float
    cp: CriticalPath
    locks: dict[int, LockMetrics]
    thread_stats: list[ThreadStats] = field(default_factory=list)

    # -- queries -------------------------------------------------------------

    def lock(self, name: str) -> LockMetrics:
        """Look up one lock's metrics by display name."""
        for m in self.locks.values():
            if m.name == name:
                return m
        known = ", ".join(sorted(m.name for m in self.locks.values()))
        raise AnalysisError(f"no lock named {name!r}; locks in trace: {known}")

    def top_locks(self, n: int | None = None, by: str = "cp_fraction") -> list[LockMetrics]:
        """Locks ranked by a metric attribute (default: CP Time, TYPE 1).

        ``by="avg_wait_fraction"`` ranks the way prior idleness-based
        tools would (TYPE 2), which is exactly the comparison the paper's
        Figs. 6, 8 and 9 draw.
        """
        ranked = sorted(self.locks.values(), key=lambda m: getattr(m, by), reverse=True)
        return ranked if n is None else ranked[:n]

    @property
    def critical_locks(self) -> list[LockMetrics]:
        """Locks appearing on the critical path, ranked by CP Time."""
        return [m for m in self.top_locks() if m.is_critical]

    @property
    def total_cp_lock_fraction(self) -> float:
        """Fraction of the critical path inside any hot critical section.

        Computed as the sum of per-lock CP fractions; nested critical
        sections (one lock taken under another) count once per lock.
        """
        return sum(m.cp_fraction for m in self.locks.values())

    # -- rendering -------------------------------------------------------------

    def render_summary(self) -> str:
        lines = [
            f"critical lock analysis: {self.name or '(unnamed)'}",
            f"  threads: {self.nthreads}   completion time: {format_duration(self.duration)}",
            f"  critical path length: {format_duration(self.cp.length)} "
            f"({len(self.cp.pieces)} pieces, coverage error "
            f"{format_duration(self.cp.coverage_error)})",
            f"  critical locks: {len(self.critical_locks)} of {len(self.locks)} locks; "
            f"hot critical sections cover "
            f"{format_percent(self.total_cp_lock_fraction)} of the critical path",
        ]
        return "\n".join(lines)

    def render_type1(self, n: int | None = None) -> str:
        """TYPE 1 table: critical-path statistics (paper Table 2, top)."""
        rows = [
            [
                m.name,
                format_percent(m.cp_fraction),
                m.invocations_on_cp,
                format_percent(m.cont_prob_on_cp),
                f"{m.invocation_increase:.2f}",
                f"{m.size_increase:.2f}",
            ]
            for m in self.top_locks(n)
        ]
        return format_table(
            ["Lock", "CP Time %", "Invo. # on CP", "Cont. Prob. on CP %",
             "Incr. Invo.", "Incr. Size"],
            rows,
            title="TYPE 1 — critical lock statistics (on the critical path)",
        )

    def render_type2(self, n: int | None = None) -> str:
        """TYPE 2 table: classical statistics (paper Table 2, bottom)."""
        rows = [
            [
                m.name,
                format_percent(m.avg_wait_fraction),
                f"{m.avg_invocations:.1f}",
                format_percent(m.avg_cont_prob),
                format_percent(m.avg_hold_fraction),
            ]
            for m in self.top_locks(n, by="avg_wait_fraction")
        ]
        return format_table(
            ["Lock", "Wait Time %", "Avg. Invo. #", "Avg. Cont. Prob %",
             "Avg. Hold Time %"],
            rows,
            title="TYPE 2 — per-lock statistics (idleness-based, prior approaches)",
        )

    def render_threads(self) -> str:
        rows = [
            [
                s.name,
                format_duration(s.lifetime),
                format_duration(s.exec_time),
                format_duration(s.lock_wait),
                format_duration(s.barrier_wait),
                format_duration(s.cond_wait + s.join_wait),
                format_duration(s.cp_time),
            ]
            for s in self.thread_stats
        ]
        return format_table(
            ["Thread", "Lifetime", "Exec", "Lock wait", "Barrier wait",
             "Other wait", "On CP"],
            rows,
            title="Per-thread breakdown",
        )

    def render(self, n: int | None = 10) -> str:
        """Full report: summary + TYPE 1 + TYPE 2 + threads."""
        return "\n\n".join(
            [
                self.render_summary(),
                self.render_type1(n),
                self.render_type2(n),
                self.render_threads(),
            ]
        )

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump of every metric."""
        return {
            "name": self.name,
            "nthreads": self.nthreads,
            "duration": self.duration,
            "critical_path": {
                "length": self.cp.length,
                "pieces": len(self.cp.pieces),
                "coverage_error": self.cp.coverage_error,
            },
            "locks": {
                m.name: {
                    "cp_time_frac": m.cp_fraction,
                    "invocations_on_cp": m.invocations_on_cp,
                    "cont_prob_on_cp": m.cont_prob_on_cp,
                    "invocation_increase": m.invocation_increase,
                    "size_increase": m.size_increase,
                    "cp_crossings": m.cp_crossings,
                    "wait_time_frac": m.avg_wait_fraction,
                    "avg_invocations": m.avg_invocations,
                    "avg_cont_prob": m.avg_cont_prob,
                    "avg_hold_frac": m.avg_hold_fraction,
                    "total_invocations": m.total_invocations,
                }
                for m in self.locks.values()
            },
            "threads": [
                {
                    "tid": s.tid,
                    "name": s.name,
                    "lifetime": s.lifetime,
                    "exec": s.exec_time,
                    "lock_wait": s.lock_wait,
                    "barrier_wait": s.barrier_wait,
                    "cond_wait": s.cond_wait,
                    "join_wait": s.join_wait,
                    "cp_time": s.cp_time,
                }
                for s in self.thread_stats
            ],
        }
