"""FleetAggregator: observation folding, persistence, summaries."""

from __future__ import annotations

import threading

from tests.fleet.fleethelpers import seeded_aggregator, synth_report

from repro.fleet import FleetAggregator, Observation, render_summary


def test_observe_builds_clusters(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=3)
    s = agg.summary()
    assert (s["traces"], s["workloads"], s["clusters"]) == (3, 1, 2)
    top = s["top"]
    assert [c["site"] for c in top] == ["L2", "L1"]
    assert top[0]["runs"] == 3
    assert abs(top[0]["cp_mean"] - 0.8) < 0.01
    assert len(top[0]["series"]) == 3


def test_observe_is_idempotent_by_digest(tmp_path):
    agg = FleetAggregator(tmp_path / "fleet")
    rep = synth_report({"L": 0.5})
    assert agg.observe(rep, digest="d1", workload="w") is not None
    assert agg.observe(rep, digest="d1", workload="w") is None
    assert agg.stats() == {
        "workloads": 1, "observations": 1, "digests": 1, "version": 1,
    }


def test_same_site_instances_fold_into_one_cluster(tmp_path):
    agg = FleetAggregator(tmp_path / "fleet")
    rep = synth_report({"pool[0].m#11": 0.3, "pool[5].m#92": 0.4, "other": 0.1})
    obs = agg.observe(rep, digest="d", workload="w")
    assert isinstance(obs, Observation)
    assert len(obs.locks) == 2  # both pool instances share a fingerprint
    folded = next(m for m in obs.locks.values() if m["site"] == "pool[*].m#*")
    assert abs(folded["cp"] - 0.7) < 1e-9


def test_state_round_trips_through_disk(tmp_path):
    first = seeded_aggregator(tmp_path / "fleet", runs=4)
    reloaded = FleetAggregator(tmp_path / "fleet")
    assert reloaded.summary() == first.summary()
    assert reloaded.version == first.version
    # The reloaded instance keeps ingesting where the first left off.
    assert reloaded.observe(
        synth_report({"L2": 0.8}), digest="run-0", workload="micro"
    ) is None
    assert reloaded.observe(
        synth_report({"L2": 0.8}), digest="new", workload="micro"
    ) is not None


def test_corrupt_state_starts_fresh(tmp_path):
    state = tmp_path / "fleet"
    seeded_aggregator(state, runs=2)
    (state / "fleet.json").write_text("{not json", encoding="utf-8")
    agg = FleetAggregator(state)
    assert agg.stats()["observations"] == 0


def test_wait_version_wakes_on_observe(tmp_path):
    agg = FleetAggregator(tmp_path / "fleet")
    seen = []

    def waiter():
        seen.append(agg.wait_version(0, timeout=10.0))

    t = threading.Thread(target=waiter)
    t.start()
    agg.observe(synth_report({"L": 0.5}), digest="d", workload="w")
    t.join(timeout=10)
    assert seen == [1]
    # And an immediate return when the version is already newer.
    assert agg.wait_version(0, timeout=0.01) == 1
    assert agg.wait_version(1, timeout=0.01) == 1  # timeout path


def test_render_summary_text(tmp_path):
    agg = seeded_aggregator(tmp_path / "fleet", runs=2)
    text = render_summary(agg.summary())
    assert "2 trace(s)" in text
    assert "L2" in text and "L1" in text
    empty = render_summary(FleetAggregator(tmp_path / "empty").summary())
    assert "no observations" in empty
