"""SVG timeline rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.analyzer import analyze
from repro.viz.svg import render_svg, write_svg

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def svg_text():
    trace = make_micro_program().run().trace
    return render_svg(trace, width=800)


def test_well_formed_xml(svg_text):
    root = ET.fromstring(svg_text)
    assert root.tag.endswith("svg")


def test_contains_thread_lanes(svg_text):
    for name in ("worker-0", "worker-3"):
        assert name in svg_text


def test_critical_path_lane(svg_text):
    assert "critical path" in svg_text
    assert "#D32F2F" in svg_text  # the CP color


def test_lock_legend_and_tooltips(svg_text):
    assert "L1" in svg_text and "L2" in svg_text
    assert "<title>" in svg_text
    assert "blocked on" in svg_text


def test_cp_boxes_tile(svg_text):
    root = ET.fromstring(svg_text)
    ns = {"svg": "http://www.w3.org/2000/svg"}
    # Count rects with titles beginning "on " (the CP lane pieces).
    cp_rects = [
        r for r in root.iter("{http://www.w3.org/2000/svg}rect")
        if any(t.text and t.text.startswith("on ") for t in r)
    ]
    assert len(cp_rects) == 4


def test_write_svg(tmp_path):
    trace = make_micro_program().run().trace
    path = write_svg(trace, tmp_path / "timeline.svg")
    assert path.read_text().startswith("<svg")


def test_empty_trace():
    from repro.trace.trace import Trace

    out = render_svg(Trace.from_events([]))
    ET.fromstring(out)


def test_given_analysis_reused():
    trace = make_micro_program().run().trace
    analysis = analyze(trace)
    assert "critical path" in render_svg(trace, analysis)
