"""Job model and the pure, picklable analysis facade.

:func:`execute` is the single entry point worker processes run: plain
arguments in (kind, trace file paths, a params dict), a plain
JSON-serializable dict out.  Nothing about the service — stores, caches,
sockets — leaks into it, which is what makes it safe to ship across a
``multiprocessing`` boundary under any start method.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ServiceError

__all__ = ["JOB_KINDS", "JobSpec", "Job", "JobStore", "execute"]

#: Public analysis kinds (``selftest`` is internal: diagnostics + tests;
#: ``check`` runs the differential verification harness over a seed range,
#: letting the pool fan a large fuzzing campaign out across workers).
JOB_KINDS = (
    "analyze", "sampled_analyze", "whatif", "whatif_protocol", "compare",
    "forecast", "check", "fleet_summary", "fleet_regressions", "selftest",
)

#: How many traces each kind consumes.
_ARITY = {
    "analyze": 1, "sampled_analyze": 1, "whatif": 1, "whatif_protocol": 1,
    "compare": 2, "forecast": 1, "check": 0, "fleet_summary": 0,
    "fleet_regressions": 0, "selftest": 0,
}

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass(frozen=True)
class JobSpec:
    """What to compute: an analysis kind over traces with parameters."""

    kind: str
    digests: tuple[str, ...]
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {self.kind!r}; expected one of {', '.join(JOB_KINDS)}"
            )
        want = _ARITY[self.kind]
        if self.kind != "selftest" and len(self.digests) != want:
            raise ServiceError(
                f"{self.kind} takes {want} trace(s), got {len(self.digests)}"
            )

    def cache_key(self) -> str:
        """Content address of the result: (digests, kind, params)."""
        blob = json.dumps(
            {"kind": self.kind, "digests": list(self.digests), "params": self.params},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One queued/running/finished unit of analysis work."""

    id: str
    spec: JobSpec
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: dict[str, Any] | None = None
    cached: bool = False

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall time, once finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self, include_result: bool = False) -> dict[str, Any]:
        out = {
            "id": self.id,
            "kind": self.spec.kind,
            "traces": list(self.spec.digests),
            "params": self.spec.params,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "latency": self.latency,
            "error": self.error,
            "cached": self.cached,
        }
        if include_result:
            out["result"] = self.result
        return out


class JobStore:
    """Thread-safe in-memory job registry with bounded history."""

    def __init__(self, max_finished: int = 1024):
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []  # insertion order, for trimming/listing
        self._max_finished = max_finished
        self._lock = threading.Lock()

    def create(self, spec: JobSpec) -> Job:
        job = Job(id=uuid.uuid4().hex[:12], spec=spec)
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._trim()
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id}", status=404)
        return job

    def list(self) -> list[Job]:
        with self._lock:
            return [self._jobs[i] for i in self._order]

    def count(self, state: str) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == state)

    # -- state transitions (called from the pool's collector thread) -------

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.state == QUEUED:
                job.state = RUNNING
                job.started_at = time.time()

    def mark_done(self, job_id: str, result: dict, cached: bool = False) -> Job | None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.state = DONE
            job.result = result
            job.cached = cached
            job.finished_at = time.time()
            if job.started_at is None:
                job.started_at = job.finished_at
            self._trim()
            return job

    def mark_failed(self, job_id: str, error: str) -> Job | None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.state = FAILED
            job.error = error
            job.finished_at = time.time()
            self._trim()
            return job

    def _trim(self) -> None:
        # Drop oldest *finished* jobs beyond the history bound; never drop
        # queued/running jobs (the pool still owes them a completion).
        excess = len(self._order) - self._max_finished
        if excess <= 0:
            return
        kept = []
        for jid in self._order:
            job = self._jobs[jid]
            if excess > 0 and job.state in (DONE, FAILED):
                del self._jobs[jid]
                excess -= 1
            else:
                kept.append(jid)
        self._order = kept


# ---------------------------------------------------------------------------
# The picklable execution facade.
# ---------------------------------------------------------------------------


def _exec_analyze(paths: list[str], params: dict) -> dict:
    from repro.core.analyzer import analyze
    from repro.trace.reader import read_trace

    trace = read_trace(paths[0])
    jobs = params.get("jobs")
    analysis = analyze(
        trace,
        validate=bool(params.get("validate", True)),
        jobs=int(jobs) if jobs is not None else None,
    )
    report = analysis.report.to_dict()
    report["shards"] = analysis.shards
    ranking = sorted(
        (
            {"name": name, "cp_time_frac": m["cp_time_frac"],
             "cont_prob_on_cp": m["cont_prob_on_cp"]}
            for name, m in report["locks"].items()
        ),
        key=lambda r: r["cp_time_frac"],
        reverse=True,
    )
    report["critical_locks"] = ranking[: int(params.get("top", 10))]
    if params.get("render"):
        report["rendered"] = analysis.render(int(params.get("top", 10)))
    return report


def _exec_sampled_analyze(paths: list[str], params: dict) -> dict:
    from repro.core.estimate import estimate_report
    from repro.sampling import downsample_trace, trace_sample_rate
    from repro.trace.reader import read_trace

    trace = read_trace(paths[0])
    rate = params.get("rate")
    if rate is not None and trace_sample_rate(trace) is None:
        trace = downsample_trace(trace, float(rate), seed=int(params.get("seed", 0)))
    est = estimate_report(
        trace,
        confidence=float(params.get("confidence", 0.9)),
        bootstrap=int(params.get("bootstrap", 200)),
    )
    report = est.to_dict()
    report["critical_locks"] = [
        {"name": e.name, "cp_time_frac": e.cp_fraction,
         "ci_low": e.ci_low, "ci_high": e.ci_high}
        for e in est.top_locks(int(params.get("top", 10)))
    ]
    if params.get("render"):
        report["rendered"] = est.render(int(params.get("top", 10)))
    return report


def _exec_whatif(paths: list[str], params: dict) -> dict:
    from repro.core.whatif import predict_no_contention, predict_shrink
    from repro.trace.reader import read_trace

    lock = params.get("lock")
    if lock is None:
        raise ServiceError("whatif requires params.lock (lock display name)")
    trace = read_trace(paths[0])
    if params.get("mode", "shrink") == "no-contention":
        res = predict_no_contention(trace, lock)
    else:
        res = predict_shrink(trace, lock, factor=float(params.get("factor", 0.0)))
    return {
        "lock": res.lock_name,
        "mode": res.mode,
        "factor": res.factor,
        "baseline_time": res.baseline_time,
        "predicted_time": res.predicted_time,
        "predicted_speedup": res.predicted_speedup,
        "predicted_gain": res.predicted_gain,
        "summary": str(res),
    }


def _exec_whatif_protocol(paths: list[str], params: dict) -> dict:
    from repro.core.replay_whatif import replay_whatif
    from repro.trace.reader import read_trace

    trace = read_trace(paths[0])
    priorities = params.get("priorities")
    if priorities:
        # JSON object keys are always strings; thread ids arrive as "3".
        priorities = {
            (int(k) if isinstance(k, str) and k.lstrip("-").isdigit() else k): int(v)
            for k, v in priorities.items()
        }
    cores = params.get("cores", "auto")
    forecast = replay_whatif(
        trace,
        protocol=str(params.get("protocol", "fifo")),
        scheduler=str(params.get("scheduler", "fifo")),
        quantum=float(params["quantum"]) if params.get("quantum") is not None else None,
        priorities=priorities,
        protocol_params=params.get("protocol_params"),
        cores=cores if cores in (None, "auto") else int(cores),
    )
    out = forecast.to_dict()
    if params.get("render"):
        out["rendered"] = forecast.render(int(params.get("top", 10)))
    return out


def _exec_compare(paths: list[str], params: dict) -> dict:
    from repro.core.analyzer import analyze
    from repro.core.compare import compare_analyses
    from repro.trace.reader import read_trace

    validate = bool(params.get("validate", False))
    before = analyze(read_trace(paths[0]), validate=validate)
    after = analyze(read_trace(paths[1]), validate=validate)
    return compare_analyses(before, after).to_dict()


def _exec_forecast(paths: list[str], params: dict) -> dict:
    from repro.core.analyzer import analyze
    from repro.core.forecast import forecast
    from repro.trace.reader import read_trace

    analysis = analyze(read_trace(paths[0]), validate=bool(params.get("validate", True)))
    counts = tuple(int(n) for n in params.get("thread_counts", (8, 16, 32, 64)))
    return forecast(analysis).to_dict(thread_counts=counts)


def _exec_check(paths: list[str], params: dict) -> dict:
    # Differential verification over a seed range.  Shrunk failing specs
    # come back inline in the result (workers have no durable filesystem);
    # callers wanting a repro file can write the spec dict verbatim.
    from repro.check import run_seeds

    run = run_seeds(
        count=int(params.get("count", 25)),
        start=int(params.get("start", 0)),
        shrink_failures=bool(params.get("shrink", True)),
        max_shrink_evals=int(params.get("max_shrink_evals", 400)),
    )
    return {
        "ok": run.ok,
        "seeds": len(run.reports),
        "start": int(params.get("start", 0)),
        "failures": [
            {
                "seed": r.seed,
                "invariants": r.invariants,
                "discrepancies": [
                    {"invariant": d.invariant, "detail": d.detail}
                    for d in r.discrepancies
                ],
                "original_op_count": r.op_count,
                "shrunk_spec": r.shrunk.to_dict() if r.shrunk is not None else None,
                "shrink_evals": r.shrink_evals,
            }
            for r in run.failures
        ],
    }


def _exec_fleet_summary(paths: list[str], params: dict) -> dict:
    # Fleet state persists as JSON under the service data dir, so a
    # worker process answers from the same state the API process writes.
    from repro.fleet.aggregate import FleetAggregator

    agg = FleetAggregator(params["state_dir"])
    return agg.summary(top=int(params.get("top", 20)))


def _exec_fleet_regressions(paths: list[str], params: dict) -> dict:
    from repro.fleet.aggregate import FleetAggregator

    agg = FleetAggregator(params["state_dir"])
    kwargs: dict = {}
    if params.get("topk") is not None:
        kwargs["topk"] = int(params["topk"])
    if params.get("noise_floor") is not None:
        kwargs["noise_floor"] = float(params["noise_floor"])
    if params.get("sigma") is not None:
        kwargs["sigma"] = float(params["sigma"])
    return agg.regressions(**kwargs)


def _exec_selftest(paths: list[str], params: dict) -> dict:
    # Internal diagnostics kind: lets tests and health checks exercise the
    # pool without trace I/O.  ``crash`` hard-kills the worker process to
    # drive the supervisor's crash-recovery path.
    import os

    if params.get("crash"):
        os._exit(17)
    if params.get("fail"):
        raise RuntimeError(str(params.get("fail")))
    if params.get("sleep"):
        time.sleep(float(params["sleep"]))
    return {"ok": True, "pid": os.getpid(), "echo": params.get("echo")}


_EXECUTORS: dict[str, Callable[[list[str], dict], dict]] = {
    "analyze": _exec_analyze,
    "sampled_analyze": _exec_sampled_analyze,
    "whatif": _exec_whatif,
    "whatif_protocol": _exec_whatif_protocol,
    "compare": _exec_compare,
    "forecast": _exec_forecast,
    "check": _exec_check,
    "fleet_summary": _exec_fleet_summary,
    "fleet_regressions": _exec_fleet_regressions,
    "selftest": _exec_selftest,
}


def execute(kind: str, paths: list[str], params: dict | None = None) -> dict:
    """Run one analysis job; pure function of its arguments.

    This is the worker-side entry point: module-level (importable under
    the ``spawn`` start method) and free of service state.  ``paths``
    are local trace files, already resolved from digests by the caller.
    """
    fn = _EXECUTORS.get(kind)
    if fn is None:
        raise ServiceError(
            f"unknown job kind {kind!r}; expected one of {', '.join(JOB_KINDS)}"
        )
    return fn(list(paths), dict(params or {}))
