"""Baseline comparison: idleness-blame ranking vs critical lock analysis.

Runs the prior-art baseline (refs [6,7,23,26]; implemented in
``repro.core.blame``) next to the paper's method on the executions where
the paper shows they disagree, and verifies — by actually applying each
method's recommended optimization via trace replay — that following the
critical-path ranking yields the better real speedup.
"""

import pytest

from repro.core.analyzer import analyze
from repro.core.blame import compute_blame
from repro.replay import reconstruct
from repro.tables import format_table
from repro.workloads import MicroBenchmark

from conftest import run_once


@pytest.mark.benchmark(group="baseline")
def test_blame_vs_cp_ranking(benchmark, show):
    def experiment():
        base = MicroBenchmark().run(nthreads=4, seed=0)
        analysis = analyze(base.trace)
        blame = compute_blame(analysis)

        cp_pick = analysis.report.top_locks(1)[0].name
        blame_pick = blame.ranking()[0]

        # Apply each method's recommendation with the same effort
        # (remove 1.0 from the chosen critical section) via replay.
        replay = reconstruct(base.trace)
        outcomes = {}
        for lock, factor in (("L1", 1.0 / 2.0), ("L2", 1.5 / 2.5)):
            res = replay.run(shrink_lock=lock, factor=factor)
            outcomes[lock] = base.completion_time / res.completion_time

        rows = [
            ["critical lock analysis (TYPE 1)", cp_pick, f"{outcomes[cp_pick]:.2f}"],
            ["idleness blame (prior art)", blame_pick, f"{outcomes[blame_pick]:.2f}"],
        ]
        return rows, cp_pick, blame_pick, outcomes

    rows, cp_pick, blame_pick, outcomes = run_once(benchmark, experiment)
    show(format_table(
        ["Method", "Recommended lock", "Actual speedup from following it"],
        rows,
        title="[baseline] which method's recommendation pays off "
        "(micro-benchmark, equal optimization effort)",
    ))
    # The disagreement the paper demonstrates...
    assert cp_pick == "L2"
    assert blame_pick == "L1"
    # ...and its resolution: following CP Time wins.
    assert outcomes[cp_pick] > outcomes[blame_pick]
