"""Property-based engine tests: semaphores, rwlocks, mixed programs.

Random-but-safe programs check the engine's safety invariants under
hypothesis: semaphore counts never go negative, rwlock invariants hold
(never readers and a writer together; at most one writer), and traces
stay structurally valid.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Program
from repro.trace.validate import validate_trace

sem_program_st = st.tuples(
    st.integers(min_value=1, max_value=4),  # semaphore value
    st.integers(min_value=2, max_value=6),  # threads
    st.integers(min_value=1, max_value=5),  # rounds
    st.integers(min_value=0, max_value=8),  # hold ticks
)


@settings(max_examples=30, deadline=None)
@given(sem_program_st)
def test_semaphore_capacity_invariant(spec):
    value, nthreads, rounds, ticks = spec
    prog = Program()
    sem = prog.semaphore(value, "S")
    concurrency = {"now": 0, "max": 0}

    def body(env, i):
        for _ in range(rounds):
            yield env.sem_acquire(sem)
            concurrency["now"] += 1
            concurrency["max"] = max(concurrency["max"], concurrency["now"])
            yield env.compute(ticks * 0.125)
            concurrency["now"] -= 1
            yield env.sem_release(sem)
            yield env.compute(0.1)

    prog.spawn_workers(nthreads, body)
    result = prog.run()
    validate_trace(result.trace)
    assert sem.value == value  # restored at quiescence
    if ticks > 0:
        assert concurrency["max"] <= value


rw_program_st = st.tuples(
    st.integers(min_value=2, max_value=6),  # threads
    st.integers(min_value=1, max_value=4),  # rounds
    st.lists(st.booleans(), min_size=1, max_size=6),  # per-round write? pattern
    st.integers(min_value=0, max_value=6),  # hold ticks
)


@settings(max_examples=30, deadline=None)
@given(rw_program_st)
def test_rwlock_exclusion_invariant(spec):
    nthreads, rounds, writes, ticks = spec
    prog = Program()
    rw = prog.rwlock("rw")
    state = {"readers": 0, "writers": 0, "violations": 0}

    def check():
        if state["writers"] > 1 or (state["writers"] and state["readers"]):
            state["violations"] += 1

    def body(env, i):
        for r in range(rounds):
            write = writes[(i + r) % len(writes)]
            if write:
                yield env.rw_acquire_write(rw)
                state["writers"] += 1
                check()
                yield env.compute(ticks * 0.125)
                state["writers"] -= 1
                yield env.rw_release_write(rw)
            else:
                yield env.rw_acquire_read(rw)
                state["readers"] += 1
                check()
                yield env.compute(ticks * 0.125)
                state["readers"] -= 1
                yield env.rw_release_read(rw)
            yield env.compute(0.05)

    prog.spawn_workers(nthreads, body)
    result = prog.run()
    validate_trace(result.trace)
    assert state["violations"] == 0
    assert not rw.readers and rw.writer is None


mixed_st = st.tuples(
    st.integers(min_value=2, max_value=5),
    st.lists(
        st.sampled_from(["mutex", "rmutex", "sem", "rw_read", "rw_write", "compute"]),
        min_size=1,
        max_size=8,
    ),
    st.integers(min_value=1, max_value=3),
)


@settings(max_examples=30, deadline=None)
@given(mixed_st)
def test_mixed_primitive_programs_stay_valid(spec):
    nthreads, script, rounds = spec
    prog = Program()
    m = prog.mutex("m")
    rm = prog.mutex("rm", reentrant=True)
    sem = prog.semaphore(2, "s")
    rw = prog.rwlock("rw")

    def body(env, i):
        for _ in range(rounds):
            for op in script:
                if op == "compute":
                    yield env.compute(0.25)
                elif op == "mutex":
                    yield env.acquire(m)
                    yield env.compute(0.125)
                    yield env.release(m)
                elif op == "rmutex":
                    yield env.acquire(rm)
                    yield env.acquire(rm)
                    yield env.compute(0.125)
                    yield env.release(rm)
                    yield env.release(rm)
                elif op == "sem":
                    yield env.sem_acquire(sem)
                    yield env.compute(0.125)
                    yield env.sem_release(sem)
                elif op == "rw_read":
                    yield env.rw_acquire_read(rw)
                    yield env.compute(0.125)
                    yield env.rw_release_read(rw)
                elif op == "rw_write":
                    yield env.rw_acquire_write(rw)
                    yield env.compute(0.125)
                    yield env.rw_release_write(rw)

    prog.spawn_workers(nthreads, body)
    result = prog.run()
    validate_trace(result.trace)
    # Analysis invariants hold on mixed-primitive traces too.
    from repro.core.analyzer import analyze

    analysis = analyze(result.trace)
    assert analysis.critical_path.coverage_error == pytest.approx(0.0, abs=1e-9)
