"""Workload models of the paper's applications (§V, Table 1).

Each workload reproduces the *synchronization skeleton* of one
application from the paper's case study, running on the deterministic
simulator: the same lock population, the same sharing structure and the
same contention growth with thread count — which is all the analysis
observes.  See DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads.base import Workload, available_workloads, get_workload, register
from repro.workloads.micro import MicroBenchmark
from repro.workloads.pipeline import Pipeline
from repro.workloads.radiosity import Radiosity
from repro.workloads.tsp import TSP
from repro.workloads.uts import UTS
from repro.workloads.water import WaterNSquared
from repro.workloads.volrend import Volrend
from repro.workloads.raytrace import Raytrace
from repro.workloads.ldapserver import LDAPServer
from repro.workloads.synthetic import SyntheticLocks

__all__ = [
    "Workload",
    "available_workloads",
    "get_workload",
    "register",
    "MicroBenchmark",
    "Pipeline",
    "Radiosity",
    "TSP",
    "UTS",
    "WaterNSquared",
    "Volrend",
    "Raytrace",
    "LDAPServer",
    "SyntheticLocks",
]
