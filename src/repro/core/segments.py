"""Per-thread timeline construction.

Turns the flat event trace into one :class:`ThreadTimeline` per thread:
the thread's lifetime, its blocked intervals (paper: segments that are
"blocked in the beginning") with resolved wakers, and its lock-hold
intervals (critical sections).
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import AnalysisError
from repro.core.model import HoldInterval, ThreadTimeline, Wait, WaitKind
from repro.core.wakers import WakerTable, resolve_wakers
from repro.trace.events import Event, EventType
from repro.trace.trace import Trace

__all__ = ["build_timelines"]


def build_timelines(
    trace: Trace,
    wakers: WakerTable | None = None,
    boundary_arrivals: dict[tuple[int, int], dict[int, float]] | None = None,
) -> dict[int, ThreadTimeline]:
    """Build every thread's timeline from a trace.

    ``wakers`` may be passed to reuse an existing resolution (the
    analyzer resolves once and shares it).  ``boundary_arrivals`` maps a
    (barrier, generation) episode to each participant's arrival time;
    the sharded analyzer supplies it when the trace was split between an
    episode's arrivals and its departs, so the departs' Waits keep their
    true (pre-split) start times.
    """
    if wakers is None:
        wakers = resolve_wakers(trace)
    per_thread: dict[int, list[Event]] = defaultdict(list)
    for ev in trace:
        per_thread[ev.tid].append(ev)
    timelines: dict[int, ThreadTimeline] = {}
    for tid, events in sorted(per_thread.items()):
        timelines[tid] = _build_one(trace, tid, events, wakers, boundary_arrivals)
    return timelines


def _build_one(
    trace: Trace,
    tid: int,
    events: list[Event],
    wakers: WakerTable,
    boundary_arrivals: dict[tuple[int, int], dict[int, float]] | None = None,
) -> ThreadTimeline:
    tl = ThreadTimeline(
        tid=tid,
        name=trace.thread_name(tid),
        start=events[0].time,
        end=events[-1].time,
    )
    creation = wakers.creations.get(tid)
    if creation is not None:
        tl.creator_tid = creation.waker_tid
        tl.create_time = creation.waker_time
        tl.create_seq = creation.waker_seq

    pending_acquire: dict[int, float] = {}  # obj -> ACQUIRE time
    open_holds: dict[int, list[tuple[float, bool, float]]] = defaultdict(list)
    pending_barrier: dict[tuple[int, int], float] = {}  # (obj, gen) -> arrive time
    if boundary_arrivals:
        for key, per_tid in boundary_arrivals.items():
            if tid in per_tid:
                pending_barrier[key] = per_tid[tid]
    pending_cond: dict[int, float] = {}  # cond obj -> block time
    pending_join: dict[int, float] = {}  # target tid -> begin time

    def add_wait(kind: WaitKind, obj: int, start: float, ev: Event) -> None:
        info = wakers.wakes.get(ev.seq)
        if info is None:
            raise AnalysisError(f"seq {ev.seq}: wake event without resolved waker")
        wait = Wait(
            tid=tid,
            kind=kind,
            obj=obj,
            start=start,
            end=ev.time,
            wake_seq=ev.seq,
            waker_tid=info.waker_tid,
            waker_time=info.waker_time,
            waker_seq=info.waker_seq,
        )
        # A wait that never actually delayed the thread must not redirect
        # the backward walk: the thread was the barrier's last arriver
        # (waker is itself), the dependency was satisfied in the past
        # (e.g. joining an already-exited thread), or — equal timestamps
        # are routine in virtual time — the handoff was instantaneous.
        # The old ``waker_time < start`` form kept the instantaneous
        # case and could route the path through a dependency that cost
        # the thread nothing.
        if wait.duration == 0:
            return
        tl.waits.append(wait)

    for ev in events:
        et = ev.etype
        if et == EventType.ACQUIRE:
            pending_acquire[ev.obj] = ev.time
        elif et == EventType.OBTAIN:
            acquire_time = pending_acquire.pop(ev.obj, ev.time)
            if ev.arg:  # contended: this is a wake event
                add_wait(WaitKind.LOCK, ev.obj, acquire_time, ev)
            open_holds[ev.obj].append((ev.time, bool(ev.arg), acquire_time))
        elif et == EventType.RELEASE:
            stack = open_holds[ev.obj]
            if not stack:
                raise AnalysisError(
                    f"seq {ev.seq}: T{tid} RELEASE on "
                    f"{trace.object_name(ev.obj)} without OBTAIN"
                )
            obtain_time, contended, acquire_time = stack.pop()
            tl.holds.setdefault(ev.obj, []).append(
                HoldInterval(
                    tid=tid,
                    obj=ev.obj,
                    start=obtain_time,
                    end=ev.time,
                    contended=contended,
                    acquire_time=acquire_time,
                )
            )
        elif et == EventType.BARRIER_ARRIVE:
            pending_barrier[(ev.obj, ev.arg)] = ev.time
        elif et == EventType.BARRIER_DEPART:
            arrive = pending_barrier.pop((ev.obj, ev.arg), ev.time)
            add_wait(WaitKind.BARRIER, ev.obj, arrive, ev)
        elif et == EventType.COND_BLOCK:
            pending_cond[ev.obj] = ev.time
        elif et == EventType.COND_WAKE:
            block = pending_cond.pop(ev.obj, ev.time)
            add_wait(WaitKind.CONDITION, ev.obj, block, ev)
        elif et == EventType.JOIN_BEGIN:
            pending_join[ev.arg] = ev.time
        elif et == EventType.JOIN_END:
            begin = pending_join.pop(ev.arg, ev.time)
            add_wait(WaitKind.JOIN, ev.arg, begin, ev)

    # Unreleased holds extend to thread end (the validator flags these,
    # but the analyzer stays usable on truncated traces).
    for obj, stack in open_holds.items():
        for obtain_time, contended, acquire_time in stack:
            tl.holds.setdefault(obj, []).append(
                HoldInterval(
                    tid=tid,
                    obj=obj,
                    start=obtain_time,
                    end=tl.end,
                    contended=contended,
                    acquire_time=acquire_time,
                )
            )
    for hold_list in tl.holds.values():
        hold_list.sort(key=lambda h: (h.start, h.end))
    tl.waits.sort(key=lambda w: w.wake_seq)
    return tl
