"""Unit tests for the extension experiment modules (small parameters)."""

import pytest

from repro.experiments import overhead, scaling
from repro.experiments.harness import list_experiments


def test_new_experiments_registered():
    ids = list_experiments()
    assert "overhead" in ids
    assert "scaling" in ids


class TestOverhead:
    def test_small_run(self):
        result = overhead.run(nthreads=2, rounds=5, cs_seconds=2e-4, repeats=1)
        assert result.values["plain"] > 0
        assert result.values["traced"] > 0
        # Sanity ceiling, generous for CI noise on tiny runs.
        assert result.values["overhead"] < 2.0
        assert "Instrumentation overhead" in result.render()

    def test_values_consistent(self):
        result = overhead.run(nthreads=2, rounds=5, cs_seconds=2e-4, repeats=1)
        assert result.values["overhead"] == pytest.approx(
            result.values["traced"] / result.values["plain"] - 1.0
        )


class TestScaling:
    def test_two_point_sweep(self):
        result = scaling.run(thread_counts=(4, 16), seed=0)
        for app in ("radiosity", "tsp", "raytrace", "volrend"):
            assert app in result.values
            assert set(result.values[app]) == {4, 16}
            cp16 = result.values[app][16]["cp_fraction"]
            assert 0 <= cp16 <= 1
        # Radiosity's master queue grows.
        rad = result.values["radiosity"]
        assert rad[16]["cp_fraction"] > rad[4]["cp_fraction"]

    def test_render_has_ratio_column(self):
        result = scaling.run(thread_counts=(4,), seed=0)
        assert "CP/Wait" in result.render()
