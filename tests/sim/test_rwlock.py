"""Reader-writer lock semantics: shared readers, exclusive writer, fairness."""

import pytest

from repro.errors import SyncUsageError
from repro.sim import Program


def test_readers_share():
    prog = Program()
    rw = prog.rwlock("rw")

    def reader(env, i):
        yield env.rw_acquire_read(rw)
        yield env.compute(2.0)
        yield env.rw_release_read(rw)

    prog.spawn_workers(4, reader)
    assert prog.run().completion_time == 2.0


def test_writers_exclusive():
    prog = Program()
    rw = prog.rwlock("rw")

    def writer(env, i):
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    prog.spawn_workers(3, writer)
    assert prog.run().completion_time == 3.0


def test_writer_excludes_readers():
    prog = Program()
    rw = prog.rwlock("rw")
    read_at = []

    def writer(env):
        yield env.rw_acquire_write(rw)
        yield env.compute(2.0)
        yield env.rw_release_write(rw)

    def reader(env):
        yield env.compute(0.5)
        yield env.rw_acquire_read(rw)
        read_at.append(env.now)
        yield env.rw_release_read(rw)

    prog.spawn(writer)
    prog.spawn(reader)
    prog.run()
    assert read_at == [2.0]


def test_writer_waits_for_readers():
    prog = Program()
    rw = prog.rwlock("rw")
    wrote_at = []

    def reader(env, i):
        yield env.rw_acquire_read(rw)
        yield env.compute(1.5)
        yield env.rw_release_read(rw)

    def writer(env):
        yield env.compute(0.5)
        yield env.rw_acquire_write(rw)
        wrote_at.append(env.now)
        yield env.rw_release_write(rw)

    prog.spawn_workers(2, reader)
    prog.spawn(writer)
    prog.run()
    assert wrote_at == [1.5]


def test_fifo_fairness_reader_queues_behind_writer():
    # reader A holds; writer W queued; late reader B must NOT jump W.
    prog = Program()
    rw = prog.rwlock("rw")
    order = []

    def reader_a(env):
        yield env.rw_acquire_read(rw)
        yield env.compute(2.0)
        yield env.rw_release_read(rw)

    def writer(env):
        yield env.compute(0.5)
        yield env.rw_acquire_write(rw)
        order.append(("w", env.now))
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader_b(env):
        yield env.compute(1.0)
        yield env.rw_acquire_read(rw)
        order.append(("rb", env.now))
        yield env.rw_release_read(rw)

    prog.spawn(reader_a)
    prog.spawn(writer)
    prog.spawn(reader_b)
    prog.run()
    assert order == [("w", 2.0), ("rb", 3.0)]


def test_reader_batch_granted_together():
    prog = Program()
    rw = prog.rwlock("rw")
    read_at = []

    def writer(env):
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader(env, i):
        yield env.compute(0.5)
        yield env.rw_acquire_read(rw)
        read_at.append(env.now)
        yield env.compute(1.0)
        yield env.rw_release_read(rw)

    prog.spawn(writer)
    prog.spawn_workers(3, reader)
    prog.run()
    assert read_at == [1.0, 1.0, 1.0]


def test_fifo_fairness_mixed_queue_drains_in_arrival_order():
    # Pin the baseline drain discipline on a mixed waiter queue.  Writer
    # holds [0, 1]; the queue builds up as R1, W1, R2, R3, W2 (strictly
    # increasing arrival times).  FIFO must grant R1 alone (it stops at
    # the queued writer), then W1, then the R2+R3 batch, then W2 — no
    # reader may overtake a writer that arrived first.
    prog = Program()
    rw = prog.rwlock("rw")
    order = []

    def holder(env):
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader(env, tag, delay):
        yield env.compute(delay)
        yield env.rw_acquire_read(rw)
        order.append((tag, env.now))
        yield env.compute(1.0)
        yield env.rw_release_read(rw)

    def writer(env, tag, delay):
        yield env.compute(delay)
        yield env.rw_acquire_write(rw)
        order.append((tag, env.now))
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    prog.spawn(holder)
    prog.spawn(reader, "r1", 0.1)
    prog.spawn(writer, "w1", 0.2)
    prog.spawn(reader, "r2", 0.3)
    prog.spawn(reader, "r3", 0.4)
    prog.spawn(writer, "w2", 0.5)
    prog.run()
    assert order == [
        ("r1", 1.0), ("w1", 2.0), ("r2", 3.0), ("r3", 3.0), ("w2", 4.0)
    ]


def test_fifo_fairness_late_reader_joins_only_open_batch():
    # A reader arriving while a read batch is *active* shares it (no
    # queued writer yet); once a writer queues, later readers wait.
    prog = Program()
    rw = prog.rwlock("rw")
    read_at = []
    wrote_at = []

    def early_reader(env):
        yield env.rw_acquire_read(rw)
        yield env.compute(2.0)
        yield env.rw_release_read(rw)

    def joining_reader(env):
        yield env.compute(0.5)
        yield env.rw_acquire_read(rw)  # batch still open: joins at 0.5
        read_at.append(env.now)
        yield env.compute(0.5)
        yield env.rw_release_read(rw)

    def writer(env):
        yield env.compute(1.0)
        yield env.rw_acquire_write(rw)
        wrote_at.append(env.now)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def late_reader(env):
        yield env.compute(1.5)
        yield env.rw_acquire_read(rw)  # writer queued at 1.0: must wait
        read_at.append(env.now)
        yield env.rw_release_read(rw)

    prog.spawn(early_reader)
    prog.spawn(joining_reader)
    prog.spawn(writer)
    prog.spawn(late_reader)
    prog.run()
    assert read_at == [0.5, 3.0]
    assert wrote_at == [2.0]


def test_release_read_not_held_rejected():
    prog = Program()
    rw = prog.rwlock("rw")

    def body(env):
        yield env.rw_release_read(rw)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="read-released"):
        prog.run()


def test_release_write_not_held_rejected():
    prog = Program()
    rw = prog.rwlock("rw")

    def body(env):
        yield env.rw_acquire_read(rw)
        yield env.rw_release_write(rw)

    prog.spawn(body)
    with pytest.raises(SyncUsageError, match="write-released"):
        prog.run()
