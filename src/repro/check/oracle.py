"""The differential oracle: every invariant a correct analysis satisfies.

``check_trace`` runs a trace through both critical-path formulations —
the backward walk (:func:`compute_critical_path`) and the forward event
DAG (:class:`EventGraph`) — plus the metric, online and serialization
layers, and returns one :class:`Discrepancy` per violated invariant
(empty list = clean).  Invariant ids (see ``docs/check.md``):

``cp-length``      walk length == DAG completion time == trace duration
``piece-tiling``   CP pieces tile [trace start, trace end] contiguously
``junctions``      junctions consistent with pieces and walk waits
``dag-path``       ``critical_events`` path is source-anchored and sums
                   to the completion time
``dag-rescale``    the longest path survives a time-unit rescaling
                   round-trip (distances recomputed in another unit,
                   scaled back, and fed to the backtracker)
``metrics``        per-lock invariant bounds (cp_fraction ∈ [0, 1], ...)
``online``         TYPE 2 sums match ``OnlineAnalyzer`` counters exactly
``online-chain``   online dependent-chain max matches an independent
                   offline replay (mutexes only)
``roundtrip``      trace → .clt/.jsonl → trace is lossless
``truncated``      the prefix cut before the first THREAD_EXIT still
                   analyzes, with completion == truncated duration
``shard-equiv``    sharded analysis (split at quiescent cut points,
                   stitched back) is *bit-identical* to the sequential
                   pass: same pieces, junctions, completion time,
                   per-lock CP time % and contention probability, and
                   byte-equal rendered report
``engine-equiv``   the columnar (numpy) engine and the per-event object
                   engine produce *bit-identical* results: critical-path
                   pieces/junctions/waits, report dict, byte-equal
                   render, identical reconstructed timelines — and
                   neither engine emits a zero-duration Wait
``replay-identity`` reconstructing the trace into a schedulable program
                   and re-running it under the ``recorded`` identity
                   protocol reproduces the baseline completion time and
                   the critical-lock ranking bit-identically
``sample-coverage`` downsampling the trace (rates 1.0/0.5/0.2) and
                   estimating statistically never errors, reproduces the
                   exact ``cp_fraction`` bit-for-bit at rate 1.0, emits
                   well-formed intervals, and the intervals contain the
                   exact value for at least the nominal fraction of
                   cells (minus binomial slack)
``analysis-error`` the pipeline raised instead of producing a result
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.analyzer import analyze
from repro.core.online import OnlineAnalyzer
from repro.errors import ReproError
from repro.trace.events import EventType, ObjectKind
from repro.trace.reader import read_trace
from repro.trace.trace import Trace
from repro.trace.writer import write_trace

__all__ = ["Discrepancy", "check_trace"]

_REL = 1e-9
_ABS = 1e-9


@dataclass(frozen=True)
class Discrepancy:
    """One violated oracle invariant."""

    invariant: str  # short id, stable across runs (shrinker keys on it)
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display only
        return f"[{self.invariant}] {self.detail}"


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL, abs_tol=_ABS)


def check_trace(trace: Trace, has_nested_holds: bool = True) -> list[Discrepancy]:
    """Run every oracle invariant; return all violations found.

    ``has_nested_holds`` disables the whole-program ``Σ cp_hold ≤
    cp_length`` bound, which only holds when no thread ever holds two
    lock-like objects at once (nested holds legitimately double-count
    critical-path time across locks).
    """
    out: list[Discrepancy] = []
    try:
        result = analyze(trace)
        graph = result.graph
    except ReproError as exc:
        return [Discrepancy("analysis-error", f"{type(exc).__name__}: {exc}")]

    cp = result.critical_path
    duration = trace.duration

    # -- cp-length: the two formulations agree with each other and reality
    completion = graph.completion_time()
    if not _close(cp.length, duration):
        out.append(
            Discrepancy(
                "cp-length",
                f"backward walk length {cp.length!r} != trace duration {duration!r}",
            )
        )
    if not _close(completion, duration):
        out.append(
            Discrepancy(
                "cp-length",
                f"DAG completion {completion!r} != trace duration {duration!r}",
            )
        )

    # -- piece-tiling
    pieces = cp.pieces
    if not pieces:
        if len(trace):
            out.append(Discrepancy("piece-tiling", "non-empty trace, no CP pieces"))
    else:
        if not _close(pieces[0].start, trace.start_time):
            out.append(
                Discrepancy(
                    "piece-tiling",
                    f"first piece starts at {pieces[0].start!r}, "
                    f"trace starts at {trace.start_time!r}",
                )
            )
        if not _close(pieces[-1].end, trace.end_time):
            out.append(
                Discrepancy(
                    "piece-tiling",
                    f"last piece ends at {pieces[-1].end!r}, "
                    f"trace ends at {trace.end_time!r}",
                )
            )
        for i, p in enumerate(pieces):
            if p.end < p.start:
                out.append(
                    Discrepancy("piece-tiling", f"piece {i} has negative duration: {p}")
                )
            if i and not _close(pieces[i - 1].end, p.start):
                out.append(
                    Discrepancy(
                        "piece-tiling",
                        f"gap between piece {i - 1} (ends {pieces[i - 1].end!r}) "
                        f"and piece {i} (starts {p.start!r})",
                    )
                )

    # -- junctions: crossings line up with pieces and traversed waits
    if len(cp.junctions) != max(0, len(pieces) - 1):
        out.append(
            Discrepancy(
                "junctions",
                f"{len(cp.junctions)} junctions for {len(pieces)} pieces",
            )
        )
    else:
        for i, j in enumerate(cp.junctions):
            before, after = pieces[i], pieces[i + 1]
            if j.to_tid != after.tid or j.from_tid != before.tid:
                out.append(
                    Discrepancy(
                        "junctions",
                        f"junction {i} crosses T{j.from_tid}->T{j.to_tid} but pieces "
                        f"are T{before.tid}->T{after.tid}",
                    )
                )
            if not _close(j.time, after.start):
                out.append(
                    Discrepancy(
                        "junctions",
                        f"junction {i} at {j.time!r} != next piece start {after.start!r}",
                    )
                )
    n_sync = sum(1 for j in cp.junctions if j.kind is not None)
    if n_sync != len(cp.waits):
        out.append(
            Discrepancy(
                "junctions",
                f"{n_sync} synchronization junctions but {len(cp.waits)} waits",
            )
        )

    # -- dag-path: one longest path, source-anchored, correct total weight
    out += _check_dag_path(trace, graph, completion)

    # -- metrics
    out += _check_metrics(result, cp, has_nested_holds)

    # -- online + online-chain
    out += _check_online(trace, result)

    # -- roundtrip
    out += _check_roundtrip(trace)

    # -- truncated
    out += _check_truncated(trace)

    # -- shard-equiv
    out += _check_shard(trace, result)

    # -- engine-equiv
    out += _check_engines(trace, result)

    # -- replay-identity
    out += _check_replay_identity(trace, result)

    # -- sample-coverage
    out += _check_sampling(trace, result)

    return out


def _check_dag_path(trace: Trace, graph, completion: float) -> list[Discrepancy]:
    out: list[Discrepancy] = []
    path = graph.critical_events()
    if not path:
        if len(trace):
            return [Discrepancy("dag-path", "non-empty trace, empty critical path")]
        return out
    if path[0] not in set(int(p) for p in graph.sources):
        out.append(
            Discrepancy(
                "dag-path",
                f"path starts at record {path[0]} which is not a root THREAD_START",
            )
        )
    times = trace.records["time"]
    for a, b in zip(path, path[1:]):
        if times[b] < times[a]:
            out.append(
                Discrepancy(
                    "dag-path",
                    f"path goes backwards in time: record {a} ({times[a]!r}) "
                    f"-> record {b} ({times[b]!r})",
                )
            )
            break
    # The path's edge weights must sum to the completion time (minus the
    # source offset, which is 0 on simulator traces).
    edge_of = {
        (int(graph.edge_src[e]), int(graph.edge_dst[e])): e
        for e in range(len(graph.edge_src))
    }
    total = float(times[path[0]] - trace.start_time)
    for a, b in zip(path, path[1:]):
        e = edge_of.get((a, b))
        if e is None:
            out.append(Discrepancy("dag-path", f"path step {a}->{b} is not an edge"))
            return out
        total += float(graph.edge_w[e])
    if not _close(total, completion):
        out.append(
            Discrepancy(
                "dag-path",
                f"path weight sum {total!r} != completion {completion!r}",
            )
        )

    # -- dag-rescale: unit-conversion invariance.  Recompute the distance
    # array in another time unit (ms -> s), scale it back, and hand it to
    # the backtracker.  Mathematically the same distances, but the
    # round-trip perturbs every value by a few ulps — the regime where
    # exact-equality backtracking truncates the walk mid-path.
    scale = 1e-3
    rescaled = graph.longest_dist(graph.edge_w * scale) / scale
    path2 = graph.critical_events(dist=rescaled)
    sources = set(int(p) for p in graph.sources)
    if not path2:
        out.append(Discrepancy("dag-rescale", "rescaled backtracking found no path"))
    elif path2[0] not in sources:
        out.append(
            Discrepancy(
                "dag-rescale",
                f"rescaled path stops at record {path2[0]} "
                "instead of reaching a root THREAD_START",
            )
        )
    return out


def _check_metrics(result, cp, has_nested_holds: bool) -> list[Discrepancy]:
    out: list[Discrepancy] = []
    cp_length = cp.length
    tol = _ABS + _REL * max(1.0, abs(cp_length))
    cp_hold_sum = 0.0
    for lm in result.report.locks.values():
        if not (-tol <= lm.cp_fraction <= 1.0 + tol):
            out.append(
                Discrepancy(
                    "metrics", f"{lm.name}: cp_fraction {lm.cp_fraction!r} outside [0, 1]"
                )
            )
        if lm.cp_hold_time > cp_length + tol:
            out.append(
                Discrepancy(
                    "metrics",
                    f"{lm.name}: cp_hold_time {lm.cp_hold_time!r} > "
                    f"cp length {cp_length!r}",
                )
            )
        if lm.cp_hold_time > lm.total_hold_time + tol:
            out.append(
                Discrepancy(
                    "metrics",
                    f"{lm.name}: cp_hold_time {lm.cp_hold_time!r} > "
                    f"total_hold_time {lm.total_hold_time!r}",
                )
            )
        if lm.contended_invocations > lm.total_invocations:
            out.append(
                Discrepancy(
                    "metrics",
                    f"{lm.name}: contended {lm.contended_invocations} > "
                    f"invocations {lm.total_invocations}",
                )
            )
        if lm.contended_on_cp > lm.invocations_on_cp:
            out.append(
                Discrepancy(
                    "metrics",
                    f"{lm.name}: contended_on_cp {lm.contended_on_cp} > "
                    f"invocations_on_cp {lm.invocations_on_cp}",
                )
            )
        cp_hold_sum += lm.cp_hold_time
    if not has_nested_holds and cp_hold_sum > cp_length + tol:
        out.append(
            Discrepancy(
                "metrics",
                f"sum of cp_hold_time {cp_hold_sum!r} > cp length {cp_length!r} "
                "without nested holds",
            )
        )
    return out


def _check_online(trace: Trace, result) -> list[Discrepancy]:
    out: list[Discrepancy] = []
    online = OnlineAnalyzer().observe_all(trace)
    for lm in result.report.locks.values():
        try:
            ls = online.stats(lm.obj)
        except KeyError:
            if lm.total_invocations:
                out.append(
                    Discrepancy(
                        "online", f"{lm.name}: {lm.total_invocations} offline "
                        "invocations but no online stats",
                    )
                )
            continue
        if ls.invocations != lm.total_invocations:
            out.append(
                Discrepancy(
                    "online",
                    f"{lm.name}: invocations online {ls.invocations} != "
                    f"offline {lm.total_invocations}",
                )
            )
        if ls.contended != lm.contended_invocations:
            out.append(
                Discrepancy(
                    "online",
                    f"{lm.name}: contended online {ls.contended} != "
                    f"offline {lm.contended_invocations}",
                )
            )
        if not _close(ls.wait_time, lm.total_wait_time):
            out.append(
                Discrepancy(
                    "online",
                    f"{lm.name}: wait_time online {ls.wait_time!r} != "
                    f"offline {lm.total_wait_time!r}",
                )
            )
        if not _close(ls.hold_time, lm.total_hold_time):
            out.append(
                Discrepancy(
                    "online",
                    f"{lm.name}: hold_time online {ls.hold_time!r} != "
                    f"offline {lm.total_hold_time!r}",
                )
            )
        if lm.kind == ObjectKind.MUTEX:
            offline_chain = _offline_max_chain(trace, lm.obj)
            if not _close(ls.max_chain_time, offline_chain):
                out.append(
                    Discrepancy(
                        "online-chain",
                        f"{lm.name}: online max chain {ls.max_chain_time!r} != "
                        f"offline replay {offline_chain!r}",
                    )
                )
    return out


def _offline_max_chain(trace: Trace, obj: int) -> float:
    """Independent replay of the dependent-chain heuristic for a mutex.

    Works directly on the record arrays rather than the event stream: a
    run starts at an uncontended OBTAIN (for a mutex an uncontended
    acquisition always means the previous holder released at or before
    this instant — an equal timestamp is still not a dependency) and
    accumulates hold time through consecutive contended handoffs.
    """
    records = trace.records
    sub = records[records["obj"] == obj]
    obtain_at: dict[int, float] = {}
    chain = 0.0
    best = 0.0
    for row in sub:
        etype = int(row["etype"])
        tid = int(row["tid"])
        if etype == int(EventType.OBTAIN):
            if not row["arg"]:
                chain = 0.0
            obtain_at[tid] = float(row["time"])
        elif etype == int(EventType.RELEASE):
            start = obtain_at.pop(tid, float(row["time"]))
            chain += float(row["time"]) - start
            best = max(best, chain)
    return best


def _check_shard(trace: Trace, result) -> list[Discrepancy]:
    """Sharded analysis must reproduce the sequential result exactly.

    Not approximately: the stitcher's claim (docs/sharding.md) is that
    merged timelines preserve the sequential element order, so every
    float is summed in the same order and the comparison can demand
    ``==`` rather than isclose.  Runs strict — a stitching inconsistency
    is reported as a discrepancy instead of falling back to sequential
    (which is what production ``analyze(jobs=N)`` does).
    """
    from repro.core.shard import analyze_sharded
    from repro.trace.shard import find_cuts

    if not find_cuts(trace):
        return []  # no quiescent point: sharding legitimately degenerates
    try:
        sharded = analyze_sharded(trace, jobs=4, parallel=False, strict=True)
    except ReproError as exc:
        return [
            Discrepancy(
                "shard-equiv", f"sharded analysis raised {type(exc).__name__}: {exc}"
            )
        ]
    if sharded is None:
        return [Discrepancy("shard-equiv", "cut points found but no shards selected")]
    out: list[Discrepancy] = []
    seq_cp, sh_cp = result.critical_path, sharded.critical_path
    if sh_cp.length != seq_cp.length:
        out.append(
            Discrepancy(
                "shard-equiv",
                f"completion time: sharded {sh_cp.length!r} != "
                f"sequential {seq_cp.length!r}",
            )
        )
    if sh_cp.pieces != seq_cp.pieces:
        n = len(sh_cp.pieces)
        out.append(
            Discrepancy(
                "shard-equiv",
                f"critical path differs: {n} sharded pieces vs "
                f"{len(seq_cp.pieces)} sequential",
            )
        )
    if sh_cp.junctions != seq_cp.junctions:
        out.append(Discrepancy("shard-equiv", "junction lists differ"))
    for obj, lm in result.report.locks.items():
        sm = sharded.report.locks.get(obj)
        if sm is None:
            out.append(Discrepancy("shard-equiv", f"{lm.name}: missing from sharded"))
            continue
        if sm.cp_fraction != lm.cp_fraction:
            out.append(
                Discrepancy(
                    "shard-equiv",
                    f"{lm.name}: CP time % sharded {sm.cp_fraction!r} != "
                    f"sequential {lm.cp_fraction!r}",
                )
            )
        if sm.cont_prob_on_cp != lm.cont_prob_on_cp:
            out.append(
                Discrepancy(
                    "shard-equiv",
                    f"{lm.name}: contention probability sharded "
                    f"{sm.cont_prob_on_cp!r} != sequential {lm.cont_prob_on_cp!r}",
                )
            )
    if sharded.report.render(None) != result.report.render(None):
        out.append(Discrepancy("shard-equiv", "rendered reports are not byte-equal"))
    return out


def _check_engines(trace: Trace, result) -> list[Discrepancy]:
    """The two analysis engines must agree bit-for-bit.

    ``result`` came from the default (columnar) engine; this runs the
    per-event object pipeline over the same trace and demands ``==``
    everywhere — the columnar engine's contract is *bit-identity*, not
    numerical closeness, which is what lets goldens, shard stitching
    and the JSON export swap engines without a diff.
    """
    try:
        obj = analyze(trace, engine="object")
    except ReproError as exc:
        return [
            Discrepancy(
                "engine-equiv", f"object engine raised {type(exc).__name__}: {exc}"
            )
        ]
    out: list[Discrepancy] = []
    col_cp, obj_cp = result.critical_path, obj.critical_path
    if col_cp.pieces != obj_cp.pieces:
        out.append(
            Discrepancy(
                "engine-equiv",
                f"critical-path pieces differ: {len(col_cp.pieces)} columnar "
                f"vs {len(obj_cp.pieces)} object",
            )
        )
    if col_cp.junctions != obj_cp.junctions:
        out.append(Discrepancy("engine-equiv", "junction lists differ"))
    if col_cp.waits != obj_cp.waits:
        out.append(Discrepancy("engine-equiv", "traversed wait lists differ"))
    if result.report.to_dict() != obj.report.to_dict():
        out.append(Discrepancy("engine-equiv", "report dicts differ"))
    if result.report.render(None) != obj.report.render(None):
        out.append(Discrepancy("engine-equiv", "rendered reports are not byte-equal"))
    if result.timelines != obj.timelines:
        out.append(Discrepancy("engine-equiv", "reconstructed timelines differ"))
    if result.wakers.wakes != obj.wakers.wakes or (
        result.wakers.creations != obj.wakers.creations
    ):
        out.append(Discrepancy("engine-equiv", "waker tables differ"))
    for res, engine in ((result, "columnar"), (obj, "object")):
        for tid, tl in res.timelines.items():
            for w in tl.waits:
                if w.duration == 0:
                    out.append(
                        Discrepancy(
                            "engine-equiv",
                            f"{engine} engine kept a zero-duration wait: "
                            f"T{tid} seq {w.wake_seq}",
                        )
                    )
                    break
    return out


def _check_replay_identity(trace: Trace, result) -> list[Discrepancy]:
    """Identity replay must reproduce the baseline answer exactly.

    The trace is reconstructed into a schedulable program
    (:mod:`repro.replay`) and re-run under the ``recorded`` protocol,
    which forces every contended grant and condition wake-up back into
    its recorded order.  A faithful replay layer makes this a no-op, so
    the completion time must match bit-for-bit and the critical-lock
    ranking — ``(name, cp_fraction)`` in TYPE 1 order — must be
    identical.  (The full report is *not* compared: at tied timestamps
    the replayed event sequence can legitimately renumber critical-path
    pieces without changing any ranking or metric the tool reports.)
    This is the fidelity guarantee the protocol what-if forecasts
    (:mod:`repro.core.replay_whatif`) rest on.
    """
    from repro.core.replay_whatif import replay_identity

    try:
        sim = replay_identity(trace)
        replayed = analyze(sim.trace, validate=False).report
    except ReproError as exc:
        return [
            Discrepancy(
                "replay-identity",
                f"identity replay raised {type(exc).__name__}: {exc}",
            )
        ]
    out: list[Discrepancy] = []
    if sim.completion_time != trace.duration:
        out.append(
            Discrepancy(
                "replay-identity",
                f"replayed completion {sim.completion_time!r} != "
                f"recorded duration {trace.duration!r}",
            )
        )

    def ranking(report) -> list[tuple[str, float]]:
        return [(m.name, m.cp_fraction) for m in report.top_locks(None, by="cp_fraction")]

    base, rep = ranking(result.report), ranking(replayed)
    if base != rep:
        for i, (b, r) in enumerate(zip(base, rep)):
            if b != r:
                out.append(
                    Discrepancy(
                        "replay-identity",
                        f"critical-lock ranking diverges at position {i}: "
                        f"recorded {b!r} != replayed {r!r}",
                    )
                )
                break
        else:
            out.append(
                Discrepancy(
                    "replay-identity",
                    f"critical-lock table sizes differ: recorded {len(base)} "
                    f"locks != replayed {len(rep)}",
                )
            )
    return out


def _check_sampling(trace: Trace, result) -> list[Discrepancy]:
    """Statistical sampling must stay honest on this trace.

    Runs the full sampling pipeline — downsample, repair, estimate —
    at several rates (:func:`repro.sampling.cross_validate`) and demands:

    * the estimator never raises on a sampled capture of a valid trace;
    * at rate 1.0 every point estimate equals the exact ``cp_fraction``
      *bit for bit* (the sample is the full trace);
    * every interval is well formed (``0 <= lo <= hi <= 1``, point in
      ``[0, 1]``);
    * across the sub-1.0 cells, the ``confidence`` intervals contain the
      exact value for at least the nominal fraction, minus 2.5-sigma
      binomial slack — a per-trace instantiation of the frequentist
      coverage claim (the CI seeds derive deterministically from the
      trace's oracle run, so a failure replays from the repro file).
    """
    from repro.sampling import cross_validate

    confidence = 0.9
    try:
        cv = cross_validate(
            trace,
            rates=(1.0, 0.5, 0.2),
            confidence=confidence,
            seed=0,
            exact=result.report,
        )
    except ReproError as exc:
        return [
            Discrepancy(
                "sample-coverage",
                f"cross-validation raised {type(exc).__name__}: {exc}",
            )
        ]
    out: list[Discrepancy] = []
    for rv in cv.rates:
        if rv.error:
            out.append(
                Discrepancy(
                    "sample-coverage",
                    f"estimator failed at rate {rv.rate}: {rv.error}",
                )
            )
            continue
        for c in rv.coverage:
            if not (0.0 <= c.ci_low <= c.ci_high <= 1.0 and 0.0 <= c.point <= 1.0):
                out.append(
                    Discrepancy(
                        "sample-coverage",
                        f"rate {rv.rate}, {c.name}: malformed interval "
                        f"point={c.point!r} ci=[{c.ci_low!r}, {c.ci_high!r}]",
                    )
                )
        if rv.rate >= 1.0 and not rv.exact_match:
            bad = next(c for c in rv.coverage if c.point != c.exact)
            out.append(
                Discrepancy(
                    "sample-coverage",
                    f"rate 1.0 is not bit-identical to the exact engine: "
                    f"{bad.name} point {bad.point!r} != exact {bad.exact!r}",
                )
            )
    cells = cv.cells
    if cells:
        misses = cells - cv.covered_cells
        allowed = math.ceil(
            cells * (1.0 - confidence)
            + 2.5 * math.sqrt(cells * confidence * (1.0 - confidence))
        )
        if misses > max(1, allowed):
            detail = "; ".join(
                f"rate {rv.rate}, {c.name}: exact {c.exact!r} outside "
                f"[{c.ci_low!r}, {c.ci_high!r}] ({c.units} units)"
                for rv in cv.rates
                if rv.rate < 1.0
                for c in rv.coverage
                if not c.covered
            )
            out.append(
                Discrepancy(
                    "sample-coverage",
                    f"{misses}/{cells} cells uncovered "
                    f"(allowed {max(1, allowed)}): {detail}",
                )
            )
    return out


def _check_roundtrip(trace: Trace) -> list[Discrepancy]:
    out: list[Discrepancy] = []
    with tempfile.TemporaryDirectory(prefix="cla-check-") as tmp:
        for suffix in (".clt", ".jsonl"):
            path = Path(tmp) / f"trace{suffix}"
            try:
                write_trace(trace, path)
                back = read_trace(path)
            except ReproError as exc:
                out.append(
                    Discrepancy(
                        "roundtrip", f"{suffix}: {type(exc).__name__}: {exc}"
                    )
                )
                continue
            if not np.array_equal(trace.records, back.records):
                bad = int(np.flatnonzero(trace.records != back.records)[0])
                out.append(
                    Discrepancy(
                        "roundtrip",
                        f"{suffix}: records differ first at position {bad}: "
                        f"{trace.records[bad]} != {back.records[bad]}",
                    )
                )
            if back.threads != trace.threads:
                out.append(Discrepancy("roundtrip", f"{suffix}: thread table differs"))
            if set(back.objects) != set(trace.objects):
                out.append(Discrepancy("roundtrip", f"{suffix}: object table differs"))
    return out


def _check_truncated(trace: Trace) -> list[Discrepancy]:
    """Cut the trace before its first THREAD_EXIT and re-analyze.

    The prefix has open holds and pending blocks; the documented
    semantics (docs/check.md) are that analysis must not raise when
    validation is skipped, and the DAG completion time must equal the
    truncated duration (every event keeps ``dist == time − start``).
    """
    etypes = trace.records["etype"]
    exits = np.flatnonzero(etypes == int(EventType.THREAD_EXIT))
    if len(exits) == 0 or int(exits[0]) < 2:
        return []
    cut = int(exits[0])
    sub = Trace(
        records=trace.records[:cut].copy(),
        objects=dict(trace.objects),
        threads=dict(trace.threads),
        meta=dict(trace.meta),
    )
    if sub.duration <= 0.0:
        return []
    try:
        result = analyze(sub, validate=False)
        graph = result.graph
        completion = graph.completion_time()
        cp_len = result.critical_path.length
    except ReproError as exc:
        return [
            Discrepancy(
                "truncated",
                f"analysis of the {cut}-event prefix raised "
                f"{type(exc).__name__}: {exc}",
            )
        ]
    out = []
    if not _close(completion, sub.duration):
        out.append(
            Discrepancy(
                "truncated",
                f"DAG completion {completion!r} != truncated duration "
                f"{sub.duration!r} (prefix of {cut} events, no THREAD_EXIT)",
            )
        )
    if not _close(cp_len, sub.duration):
        out.append(
            Discrepancy(
                "truncated",
                f"backward walk length {cp_len!r} != truncated duration "
                f"{sub.duration!r}",
            )
        )
    return out
