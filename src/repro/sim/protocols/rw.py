"""Reader-writer admission policies: reader-pref, writer-pref, phase-fair.

The FIFO baseline (in :mod:`repro.sim.protocols.base`) queues everyone
in arrival order and grants consecutive readers as a batch.  These
policies deliberately break arrival order:

* :class:`ReaderPreferenceRW` — readers always join an active read
  phase, even past queued writers; a writer runs only when no reader is
  active or queued.  Maximum read throughput, unbounded writer
  starvation (the classic ``rwlock`` hazard).
* :class:`WriterPreferenceRW` — an arriving writer blocks later readers
  immediately and queued writers run before queued readers.  Fresh data
  at the cost of reader convoys behind write bursts.
* :class:`PhaseFairRW` — alternating reader/writer phases: each release
  boundary flips the phase when the other side is waiting, so neither
  side waits for more than one phase of the other (Brandenburg-style
  bounded unfairness).

Mutex/semaphore handling is inherited unchanged (FIFO).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.protocols.base import LockProtocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.sync import SimRWLock
    from repro.sim.thread import SimThread

__all__ = ["ReaderPreferenceRW", "WriterPreferenceRW", "PhaseFairRW"]


class ReaderPreferenceRW(LockProtocol):
    """Readers never wait behind queued writers."""

    name = "reader-pref"

    def rw_can_grant(self, rw: "SimRWLock", thread: "SimThread", write: bool) -> bool:
        if write:
            return rw.writer is None and not rw.readers and not rw.waiters
        return rw.writer is None  # join any active/starting read phase

    def rw_drain(self, rw: "SimRWLock") -> list[tuple["SimThread", bool]]:
        if rw.writer is not None:
            return []
        grants: list[tuple["SimThread", bool]] = []
        if any(not wants_write for _, wants_write in rw.waiters):
            remaining = [w for w in rw.waiters if w[1]]
            for waiter, wants_write in rw.waiters:
                if not wants_write:
                    rw.readers.add(waiter)
                    grants.append((waiter, False))
            rw.waiters.clear()
            rw.waiters.extend(remaining)
        if not rw.readers and rw.waiters:
            waiter, _ = rw.waiters.popleft()
            rw.writer = waiter
            grants.append((waiter, True))
        return grants


class WriterPreferenceRW(LockProtocol):
    """Queued writers run first; arriving readers wait behind any writer."""

    name = "writer-pref"

    def rw_can_grant(self, rw: "SimRWLock", thread: "SimThread", write: bool) -> bool:
        if write:
            return rw.writer is None and not rw.readers
        if any(wants_write for _, wants_write in rw.waiters):
            return False
        return rw.writer is None

    def rw_drain(self, rw: "SimRWLock") -> list[tuple["SimThread", bool]]:
        if rw.writer is not None:
            return []
        for i, (waiter, wants_write) in enumerate(rw.waiters):
            if wants_write:
                if rw.readers:
                    return []  # writer next, once the readers drain
                del rw.waiters[i]
                rw.writer = waiter
                return [(waiter, True)]
        grants = [(waiter, False) for waiter, _ in rw.waiters]
        for waiter, _ in grants:
            rw.readers.add(waiter)
        rw.waiters.clear()
        return grants


class PhaseFairRW(LockProtocol):
    """Alternate reader and writer phases when both sides are waiting."""

    name = "phase-fair"

    def __init__(self) -> None:
        super().__init__()
        self._last_phase: dict[int, str] = {}  # obj id -> "r" | "w"

    def rw_can_grant(self, rw: "SimRWLock", thread: "SimThread", write: bool) -> bool:
        if rw.waiters:
            return False
        if write:
            if rw.writer is None and not rw.readers:
                self._last_phase[rw.obj] = "w"
                return True
            return False
        if rw.writer is None:
            self._last_phase[rw.obj] = "r"
            return True
        return False

    def rw_drain(self, rw: "SimRWLock") -> list[tuple["SimThread", bool]]:
        if rw.writer is not None or rw.readers or not rw.waiters:
            return []
        queued_writer = any(wants_write for _, wants_write in rw.waiters)
        queued_reader = any(not wants_write for _, wants_write in rw.waiters)
        last = self._last_phase.get(rw.obj, "w")
        if queued_writer and (last == "r" or not queued_reader):
            for i, (waiter, wants_write) in enumerate(rw.waiters):
                if wants_write:
                    del rw.waiters[i]
                    rw.writer = waiter
                    self._last_phase[rw.obj] = "w"
                    return [(waiter, True)]
        grants = [(waiter, False) for waiter, wants_write in rw.waiters if not wants_write]
        if grants:
            remaining = [w for w in rw.waiters if w[1]]
            rw.waiters.clear()
            rw.waiters.extend(remaining)
            for waiter, _ in grants:
                rw.readers.add(waiter)
            self._last_phase[rw.obj] = "r"
        return grants
