"""Differential verification + trace-fuzzing harness (``repro check``).

The analyzer computes the critical path two independent ways — the
backward walk of the paper's Fig. 2 and the forward event DAG — and this
package turns that redundancy into a permanent correctness oracle:
random deadlock-free multithreaded programs are generated, executed on
the simulator, and every analysis invariant is cross-checked on the
resulting trace.  Failures are minimized to replayable repro files.

See ``docs/check.md`` for the invariant catalogue and repro file format.
"""

from repro.check.generator import generate_spec
from repro.check.interp import build_program, run_spec
from repro.check.oracle import Discrepancy, check_trace
from repro.check.runner import (
    CheckRun,
    SeedReport,
    check_spec,
    replay_repro,
    run_seed,
    run_seeds,
)
from repro.check.shrink import shrink
from repro.check.spec import ProgramSpec, ThreadSpec

__all__ = [
    "ProgramSpec",
    "ThreadSpec",
    "generate_spec",
    "build_program",
    "run_spec",
    "Discrepancy",
    "check_trace",
    "check_spec",
    "shrink",
    "SeedReport",
    "CheckRun",
    "run_seed",
    "run_seeds",
    "replay_repro",
]
