"""Deterministic instrumentation tests via VirtualClock.

With a manually-advanced clock, the real-thread tracer's timestamps are
exact, so trace contents can be asserted precisely (single-threaded —
the virtual clock is not thread-safe by design).
"""

import pytest

from repro.core.analyzer import analyze
from repro.instrument import ProfilingSession, VirtualClock
from repro.trace.events import EventType


def test_exact_timestamps():
    clock = VirtualClock()
    with ProfilingSession(name="vc", clock=clock) as s:
        lock = s.lock("L")
        clock.advance(1_000_000_000)  # 1s
        lock.acquire()
        clock.advance(2_000_000_000)  # hold for 2s
        lock.release()
        clock.advance(500_000_000)
    trace = s.trace()
    times = {(EventType(ev.etype), round(ev.time, 9)) for ev in trace}
    assert (EventType.ACQUIRE, 1.0) in times
    assert (EventType.RELEASE, 3.0) in times
    assert trace.duration == pytest.approx(3.5)


def test_hold_time_measured_exactly():
    clock = VirtualClock()
    with ProfilingSession(name="vc", clock=clock) as s:
        lock = s.lock("L")
        for hold_s in (1, 2, 3):
            lock.acquire()
            clock.advance(hold_s * 1_000_000_000)
            lock.release()
    analysis = analyze(s.trace())
    assert analysis.report.lock("L").total_hold_time == pytest.approx(6.0)
    assert analysis.report.lock("L").total_invocations == 3


def test_rlock_nested_hold_spans_outermost():
    from repro.instrument import TracedRLock

    clock = VirtualClock()
    with ProfilingSession(name="vc", clock=clock) as s:
        rl = TracedRLock(s, "R")
        rl.acquire()
        clock.advance(1_000_000_000)
        rl.acquire()  # nested
        clock.advance(1_000_000_000)
        rl.release()
        clock.advance(1_000_000_000)
        rl.release()
    analysis = analyze(s.trace())
    m = analysis.report.lock("R")
    assert m.total_invocations == 1
    assert m.total_hold_time == pytest.approx(3.0)


def test_condition_timestamps_single_thread_timeout():
    clock = VirtualClock()
    with ProfilingSession(name="vc", clock=clock) as s:
        cv = s.condition(name="cv")
        with cv.lock:
            # A zero-timeout wait returns immediately (no signaller).
            ok = cv.wait(timeout=0.0)
            assert not ok
    trace = s.trace()
    assert trace.count(EventType.COND_BLOCK) == 1
    assert trace.count(EventType.COND_WAKE) == 1
