"""UTS workload: deterministic tree, stealing, low-wait lock profile."""

import pytest

from repro.core.analyzer import analyze
from repro.trace.validate import validate_trace
from repro.workloads import UTS
from repro.workloads.uts import splitmix64

SMALL = dict(root_children=40, node_cost=0.05)


def count_tree_nodes(wl: UTS) -> int:
    """Walk the implicit tree exactly as the workload defines it."""
    root = splitmix64(wl.tree_seed)
    stack = [wl.child_id(root, k) for k in range(wl.root_children)]
    count = 0
    while stack:
        node = stack.pop()
        count += 1
        for k in range(wl.children_of(node)):
            stack.append(wl.child_id(node, k))
    return count


def test_splitmix64_deterministic_and_spread():
    vals = {splitmix64(i) for i in range(1000)}
    assert len(vals) == 1000
    assert splitmix64(42) == splitmix64(42)


def test_tree_shape_independent_of_threads():
    """The tree is a pure function of ids: every run visits every node."""
    wl = UTS(**SMALL)
    expected = count_tree_nodes(wl)
    for n in (1, 4):
        res = wl.run(nthreads=n, seed=3)
        analysis = analyze(res.trace)
        pops = sum(
            m.total_invocations for m in analysis.report.locks.values()
            if m.name.startswith("stackLock")
        )
        # Each processed node needs >= 1 pop; pushes and empty probes add more.
        assert pops >= expected


def test_trace_valid():
    res = UTS(**SMALL).run(nthreads=4, seed=3)
    validate_trace(res.trace)


def test_stack_locks_low_wait_but_on_cp():
    """Paper Fig. 8's UTS story: near-zero wait, nonzero CP presence."""
    res = UTS().run(nthreads=16, seed=3)
    analysis = analyze(res.trace)
    top = analysis.report.top_locks(1)[0]
    assert top.name.startswith("stackLock")
    assert top.cp_fraction > 0.01
    assert top.avg_wait_fraction < top.cp_fraction


def test_work_conservation_speedup():
    t1 = UTS(**SMALL).run(nthreads=1, seed=3).completion_time
    t4 = UTS(**SMALL).run(nthreads=4, seed=3).completion_time
    assert t4 < t1
    assert t4 > t1 / 4 * 0.8  # no free lunch


def test_max_nodes_safety_valve():
    wl = UTS(root_children=50, max_nodes=60, node_cost=0.01)
    res = wl.run(nthreads=2, seed=0)
    validate_trace(res.trace)
