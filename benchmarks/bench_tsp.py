"""Paper §V.E: TSP's Qlock on the critical path and the split optimization.

Paper: Qlock ~68% of the critical path at 24 threads; splitting it into
Q_headlock/Q_taillock improves end-to-end performance by ~19%.
"""

import pytest

from repro.experiments import tsp_opt

from conftest import run_once


@pytest.mark.benchmark(group="tsp")
def test_tsp_optimization(benchmark, show):
    result = run_once(benchmark, tsp_opt.run, nthreads=24, seed=0)
    show(result.render())
    v = result.values

    # Qlock dominates the critical path (paper: ~68%).
    assert v["qlock_cp_fraction"] > 0.4
    # Wait time would have underestimated it badly.
    assert v["qlock_cp_fraction"] > 2 * v["qlock_wait_fraction"]
    # The head/tail split buys a double-digit-percent improvement
    # (paper: ~19%).
    assert 0.08 < v["improvement"] < 0.40
