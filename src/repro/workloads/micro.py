"""The paper's micro-benchmark (Fig. 5).

Two consecutive critical sections per thread: L1 protects a counter
incremented for 2 billion iterations, L2 for 2.5 billion.  In virtual
time the loops become compute blocks of 2.0 and 2.5 units.  The paper's
"optimization" removes 1 billion iterations from one loop; here,
``optimize="L1"``/``"L2"`` subtracts ``optimize_amount`` (default 1.0)
from the corresponding critical section — "the same amount of
optimization effort" for either lock.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.program import Program
from repro.workloads.base import Workload, register

__all__ = ["MicroBenchmark"]


@register
class MicroBenchmark(Workload):
    """Two-lock micro-benchmark of paper Fig. 5."""

    name = "micro"

    def __init__(
        self,
        cs1: float = 2.0,
        cs2: float = 2.5,
        optimize: str | None = None,
        optimize_amount: float = 1.0,
    ):
        if optimize not in (None, "L1", "L2"):
            raise WorkloadError(f"optimize must be None, 'L1' or 'L2', got {optimize!r}")
        self.cs1 = cs1 - (optimize_amount if optimize == "L1" else 0.0)
        self.cs2 = cs2 - (optimize_amount if optimize == "L2" else 0.0)
        if self.cs1 <= 0 or self.cs2 <= 0:
            raise WorkloadError("optimization removed an entire critical section")
        self.optimize = optimize or ""

    def build(self, prog: Program, nthreads: int) -> None:
        l1 = prog.mutex("L1")
        l2 = prog.mutex("L2")

        def worker(env, i):
            # for (i = 0; i < 2e9; i++) a++;  -- under L1
            yield env.acquire(l1)
            yield env.compute(self.cs1)
            yield env.release(l1)
            # for (j = 0; j < 2.5e9; j++) b++;  -- under L2
            yield env.acquire(l2)
            yield env.compute(self.cs2)
            yield env.release(l2)

        prog.spawn_workers(nthreads, worker)
