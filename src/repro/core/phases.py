"""Phase analysis: per-barrier-phase critical lock statistics.

Barrier-structured programs (Radiosity's iterations, Water's timesteps)
have distinct phases whose bottlenecks differ; a whole-run ranking blurs
them.  This module cuts the critical path at *global* barrier crossings
(junctions where every thread synchronized) and computes each phase's
lock CP shares, complementing the fixed-width windows of
:mod:`repro.core.windows` with program-structure-aligned boundaries.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.core.analyzer import AnalysisResult
from repro.tables import format_table
from repro.units import format_duration, format_percent

__all__ = ["Phase", "PhaseReport", "split_phases"]


@dataclass(frozen=True)
class Phase:
    """One barrier-delimited span of the execution."""

    index: int
    start: float
    end: float
    boundary_obj: int  # barrier object ending this phase (-1 for the last)
    lock_cp_shares: dict[str, float]  # lock name -> share of phase CP time

    @property
    def duration(self) -> float:
        return self.end - self.start

    def dominant_lock(self) -> str | None:
        if not self.lock_cp_shares:
            return None
        name, share = max(self.lock_cp_shares.items(), key=lambda kv: kv[1])
        return name if share > 0 else None


@dataclass
class PhaseReport:
    """Phases of one execution with per-phase lock criticality."""

    phases: list[Phase]

    def render(self, top: int = 2) -> str:
        rows = []
        for ph in self.phases:
            ranked = sorted(
                ph.lock_cp_shares.items(), key=lambda kv: kv[1], reverse=True
            )[:top]
            desc = ", ".join(
                f"{name} {format_percent(share)}" for name, share in ranked if share > 0
            )
            rows.append(
                [ph.index, f"{ph.start:.4g}", f"{ph.end:.4g}",
                 format_duration(ph.duration), desc or "(no lock time)"]
            )
        return format_table(
            ["Phase", "Start", "End", "Duration", "Top locks (share of phase CP)"],
            rows,
            title="Barrier-phase critical lock analysis",
        )


def split_phases(analysis: AnalysisResult) -> PhaseReport:
    """Cut the execution at barrier generations crossed by every thread.

    A barrier generation is a *global* phase boundary when its cohort
    includes every thread of the trace; its departure time splits the
    critical path.
    """
    trace = analysis.trace
    nthreads = len(analysis.timelines)
    # Find global-barrier departure times via the timelines' waits plus
    # the last arrivers (who have no wait): collect per (obj, gen)
    # participant counts from the raw trace.
    from collections import defaultdict

    from repro.trace.events import EventType

    cohorts: dict[tuple[int, int], int] = defaultdict(int)
    depart_time: dict[tuple[int, int], float] = {}
    for ev in trace:
        if ev.etype == EventType.BARRIER_ARRIVE:
            cohorts[(ev.obj, ev.arg)] += 1
        elif ev.etype == EventType.BARRIER_DEPART:
            depart_time[(ev.obj, ev.arg)] = max(
                depart_time.get((ev.obj, ev.arg), 0.0), ev.time
            )
    boundaries = sorted(
        (t, obj)
        for (obj, gen), t in depart_time.items()
        if cohorts[(obj, gen)] == nthreads
    )

    edges = [trace.start_time] + [t for t, _ in boundaries] + [trace.end_time]
    objs = [obj for _, obj in boundaries] + [-1]
    # Deduplicate degenerate spans (consecutive barriers at one instant).
    phases: list[Phase] = []
    pieces_by_tid = analysis.critical_path.pieces_by_thread()
    for i in range(len(edges) - 1):
        start, end = edges[i], edges[i + 1]
        if end <= start:
            continue
        shares = _phase_lock_shares(analysis, pieces_by_tid, start, end)
        phases.append(
            Phase(
                index=len(phases),
                start=start,
                end=end,
                boundary_obj=objs[i],
                lock_cp_shares=shares,
            )
        )
    return PhaseReport(phases=phases)


def _phase_lock_shares(
    analysis: AnalysisResult, pieces_by_tid, start: float, end: float
) -> dict[str, float]:
    span = end - start
    shares: dict[str, float] = {}
    for info in analysis.trace.locks:
        total = 0.0
        for tid, pieces in pieces_by_tid.items():
            holds = analysis.timelines[tid].holds.get(info.obj)
            if not holds:
                continue
            starts = [h.start for h in holds]
            for p in pieces:
                lo, hi = max(p.start, start), min(p.end, end)
                if hi <= lo:
                    continue
                j = max(0, bisect_right(starts, lo) - 1)
                while j < len(holds) and holds[j].start < hi:
                    h = holds[j]
                    total += max(0.0, min(hi, h.end) - max(lo, h.start))
                    j += 1
        shares[info.display_name] = total / span if span > 0 else 0.0
    return shares
