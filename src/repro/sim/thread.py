"""Simulated threads.

A thread body is a generator function whose first parameter is the
:class:`SimThread` itself (conventionally named ``env``).  The body
suspends by yielding request objects and receives results through the
``yield`` expression::

    def worker(env, n):
        yield env.compute(1.5)
        ok = yield env.try_acquire(lock)
        if not ok:
            yield env.acquire(lock)
        yield env.compute(n * 0.1)
        yield env.release(lock)

Helpers can be factored into sub-generators and invoked with
``yield from`` (their ``return`` value propagates), which is how the
concurrent data structures in :mod:`repro.workloads.queues` are built.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

import numpy as np

from repro.sim import syscalls as sc

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.sync import SimBarrier, SimCondition, SimMutex, SimRWLock, SimSemaphore

__all__ = ["ThreadState", "ThreadHandle", "SimThread", "ThreadBody"]

#: Type of a thread body: a generator function taking (env, *args).
ThreadBody = Callable[..., Generator[sc.Request, Any, Any]]


def _empty_body() -> Generator[sc.Request, Any, None]:
    """Generator that finishes on the first resume (see ``start_generator``)."""
    return
    yield  # pragma: no cover - makes this a generator function


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    CREATED = "created"
    READY = "ready"  # runnable, waiting for a core
    RUNNING = "running"  # owns a core (executing or computing)
    BLOCKED = "blocked"  # waiting on a synchronization object
    DONE = "done"


class ThreadHandle:
    """Opaque, user-facing handle to a spawned thread (joinable)."""

    __slots__ = ("_thread",)

    def __init__(self, thread: "SimThread"):
        self._thread = thread

    @property
    def tid(self) -> int:
        return self._thread.tid

    @property
    def name(self) -> str:
        return self._thread.name

    @property
    def done(self) -> bool:
        return self._thread.state is ThreadState.DONE

    @property
    def result(self) -> Any:
        """Return value of the thread body (valid once ``done``)."""
        return self._thread.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadHandle {self.name} tid={self.tid} {self._thread.state.value}>"


class SimThread:
    """Engine-side thread object; also the ``env`` API seen by thread code."""

    __slots__ = (
        "engine",
        "tid",
        "name",
        "state",
        "has_core",
        "block_reason",
        "gen",
        "handle",
        "rng",
        "joiners",
        "result",
        "pending",
        "priority",
        "boost",
        "held",
        "blocked_on",
        "block_start",
        "pending_compute",
        "replay_tid",
        "_body",
        "_args",
    )

    def __init__(
        self,
        engine: "Simulator",
        tid: int,
        name: str,
        body: ThreadBody,
        args: tuple,
        rng: np.random.Generator,
        priority: int = 0,
    ):
        self.engine = engine
        self.tid = tid
        self.name = name
        self.state = ThreadState.CREATED
        self.has_core = False
        self.block_reason = ""
        self._body = body
        self._args = args
        self.gen: Generator[sc.Request, Any, Any] | None = None
        self.handle = ThreadHandle(self)
        self.rng = rng
        self.joiners: list["SimThread"] = []
        self.result: Any = None
        self.pending: Any = None  # resume value parked while waiting for a core
        self.priority = priority  # base scheduling/lock priority
        self.boost = 0  # protocol-managed boost (inheritance/ceiling)
        self.held: set[Any] = set()  # lock-like objects currently held
        self.blocked_on: Any = None  # lock this thread is blocked acquiring
        self.block_start = 0.0  # virtual time the current block began
        self.pending_compute = 0.0  # compute left after a quantum slice
        self.replay_tid: int | None = None  # original tid during trace replay

    def start_generator(self) -> None:
        """Instantiate the body generator (deferred so spawn stays cheap)."""
        out = self._body(self, *self._args)
        if isinstance(out, Generator):
            self.gen = out
        else:
            # A body with no yields is a plain function: it already ran to
            # completion; stand in an empty generator so the engine's first
            # resume immediately finishes the thread.
            self.result = out
            self.gen = _empty_body()

    # -- properties available to thread code --------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.engine.now

    @property
    def effective_priority(self) -> int:
        """Base priority plus any protocol-granted boost."""
        return self.priority if self.priority >= self.boost else self.boost

    # -- request constructors (the simulated "libc") ------------------------

    def compute(self, duration: float) -> sc.Compute:
        """Consume ``duration`` units of virtual CPU time."""
        return sc.Compute(duration)

    def acquire(self, mutex: "SimMutex") -> sc.Acquire:
        """Block until ``mutex`` is obtained."""
        return sc.Acquire(mutex)

    def try_acquire(self, mutex: "SimMutex") -> sc.TryAcquire:
        """Attempt ``mutex`` without blocking; yields back ``True`` if obtained."""
        return sc.TryAcquire(mutex)

    def release(self, mutex: "SimMutex") -> sc.Release:
        """Release a held ``mutex``."""
        return sc.Release(mutex)

    def barrier_wait(self, barrier: "SimBarrier") -> sc.BarrierWait:
        """Wait for all parties at ``barrier``."""
        return sc.BarrierWait(barrier)

    def cond_wait(self, cond: "SimCondition", mutex: "SimMutex") -> sc.CondWait:
        """Release ``mutex``, wait for a signal on ``cond``, reacquire."""
        return sc.CondWait(cond, mutex)

    def cond_signal(self, cond: "SimCondition") -> sc.CondSignal:
        """Wake one waiter of ``cond``."""
        return sc.CondSignal(cond)

    def cond_broadcast(self, cond: "SimCondition") -> sc.CondBroadcast:
        """Wake all waiters of ``cond``."""
        return sc.CondBroadcast(cond)

    def sem_acquire(self, sem: "SimSemaphore") -> sc.SemAcquire:
        """Decrement ``sem``, blocking at zero."""
        return sc.SemAcquire(sem)

    def sem_release(self, sem: "SimSemaphore") -> sc.SemRelease:
        """Increment ``sem``."""
        return sc.SemRelease(sem)

    def rw_acquire_read(self, rwlock: "SimRWLock") -> sc.RWAcquire:
        """Acquire ``rwlock`` for reading."""
        return sc.RWAcquire(rwlock, write=False)

    def rw_acquire_write(self, rwlock: "SimRWLock") -> sc.RWAcquire:
        """Acquire ``rwlock`` for writing."""
        return sc.RWAcquire(rwlock, write=True)

    def rw_release_read(self, rwlock: "SimRWLock") -> sc.RWRelease:
        """Release a read hold on ``rwlock``."""
        return sc.RWRelease(rwlock, write=False)

    def rw_release_write(self, rwlock: "SimRWLock") -> sc.RWRelease:
        """Release the write hold on ``rwlock``."""
        return sc.RWRelease(rwlock, write=True)

    def spawn(
        self, fn: ThreadBody, *args: Any, name: str | None = None, priority: int = 0
    ) -> sc.Spawn:
        """Create a child thread; yields back its :class:`ThreadHandle`."""
        return sc.Spawn(fn, args, name, priority)

    def join(self, handle: ThreadHandle) -> sc.Join:
        """Block until ``handle``'s thread exits."""
        return sc.Join(handle)

    def join_all(self, handles: Iterable[ThreadHandle]) -> Generator[sc.Request, Any, None]:
        """Sub-generator joining several threads: ``yield from env.join_all(hs)``."""
        for h in handles:
            yield sc.Join(h)

    def yield_core(self) -> sc.YieldCore:
        """Voluntarily requeue behind other ready threads (core-limited mode)."""
        return sc.YieldCore()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name} tid={self.tid} {self.state.value}>"
