"""Extension experiment: top-lock criticality growth across applications.

Generalizes the paper's Fig. 9 (which tracks only Radiosity) to every
workload with a dominant lock: for each application, the top lock's
CP Time % and Wait Time % at increasing thread counts — showing that
the CP-vs-wait divergence the paper demonstrates is a general pattern
of saturating locks, not a Radiosity quirk.
"""

from __future__ import annotations

from repro.core.analyzer import analyze
from repro.experiments.harness import ExperimentResult, experiment
from repro.units import format_percent
from repro.workloads.radiosity import Radiosity
from repro.workloads.raytrace import Raytrace
from repro.workloads.tsp import TSP
from repro.workloads.volrend import Volrend

__all__ = ["run"]


def _suite():
    return [
        ("radiosity", lambda: Radiosity(), "tq[0].qlock"),
        ("tsp", lambda: TSP(), "Q.qlock"),
        ("raytrace", lambda: Raytrace(), "mem"),
        ("volrend", lambda: Volrend(), "QLock"),
    ]


@experiment("scaling")
def run(thread_counts: tuple = (4, 8, 16, 24), seed: int = 0) -> ExperimentResult:
    rows = []
    values: dict[str, dict[int, dict[str, float]]] = {}
    for app, make, lock_name in _suite():
        values[app] = {}
        for i, n in enumerate(thread_counts):
            res = make().run(nthreads=n, seed=seed)
            analysis = analyze(res.trace)
            m = analysis.report.lock(lock_name)
            values[app][n] = {
                "cp_fraction": m.cp_fraction,
                "wait_fraction": m.avg_wait_fraction,
            }
            rows.append(
                [
                    f"{app} ({lock_name})" if i == 0 else "",
                    n,
                    format_percent(m.cp_fraction),
                    format_percent(m.avg_wait_fraction),
                    f"{m.cp_fraction / m.avg_wait_fraction:.1f}x"
                    if m.avg_wait_fraction > 0
                    else "-",
                ]
            )
    return ExperimentResult(
        exp_id="scaling",
        title="Top-lock criticality vs thread count, all queue/allocator apps",
        headers=["Application (lock)", "Threads", "CP Time %", "Wait Time %",
                 "CP/Wait"],
        rows=rows,
        notes=[
            "extension of paper Fig. 9 to the full suite: CP Time grows "
            "with threads and always leads Wait Time for the saturating lock",
        ],
        values=values,
    )
