"""Benchmark fixtures.

``show`` prints through pytest's capture so the regenerated paper tables
appear in the benchmark run's output (the whole point of the harness).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capfd):
    """Print text bypassing capture (visible in `pytest benchmarks/` output)."""

    def _show(text: str) -> None:
        with capfd.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
