"""Merging traces from separate profiling sessions.

Real systems are profiled in pieces — one :class:`ProfilingSession` per
process, or separate simulator runs of cooperating components.  To
analyze them as one execution, :func:`merge_traces` remaps thread and
object ids into disjoint ranges, applies per-trace time offsets (for
clocks that started at different moments), prefixes names to keep them
distinguishable, and re-validates the result.

Synchronization objects are *not* unified across traces (two processes'
locks are genuinely distinct); the merged trace answers "what does the
combined timeline look like", with each component's critical path intact
and the analyzer's whole-trace statistics spanning both.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import TraceError
from repro.trace.events import Event, EventType
from repro.trace.trace import ObjectInfo, Trace

__all__ = ["merge_traces"]


def merge_traces(
    traces: Sequence[Trace],
    offsets: Sequence[float] | None = None,
    prefixes: Sequence[str] | None = None,
) -> Trace:
    """Combine traces into one (see module docstring).

    Parameters
    ----------
    offsets:
        Per-trace time shifts (seconds); defaults to all zero, i.e. the
        traces' clocks are assumed already aligned.
    prefixes:
        Per-trace name prefixes for threads and objects; defaults to
        ``p0:``, ``p1:``, … when merging more than one trace.
    """
    if not traces:
        raise TraceError("merge_traces needs at least one trace")
    if offsets is None:
        offsets = [0.0] * len(traces)
    if len(offsets) != len(traces):
        raise TraceError(f"{len(traces)} traces but {len(offsets)} offsets")
    if prefixes is None:
        prefixes = (
            [""] if len(traces) == 1 else [f"p{i}:" for i in range(len(traces))]
        )
    if len(prefixes) != len(traces):
        raise TraceError(f"{len(traces)} traces but {len(prefixes)} prefixes")

    events: list[Event] = []
    objects: dict[int, ObjectInfo] = {}
    threads: dict[int, str] = {}
    tid_base = 0
    obj_base = 0
    sources = []
    for trace, offset, prefix in zip(traces, offsets, prefixes):
        tid_map = {
            tid: tid_base + i for i, tid in enumerate(trace.thread_ids)
        }
        obj_map = {obj: obj_base + i for i, obj in enumerate(sorted(trace.objects))}
        for tid, new_tid in tid_map.items():
            threads[new_tid] = prefix + trace.thread_name(tid)
        for obj, new_obj in obj_map.items():
            info = trace.objects[obj]
            objects[new_obj] = ObjectInfo(
                obj=new_obj, kind=info.kind, name=prefix + info.display_name
            )
        for ev in trace:
            arg = ev.arg
            # Thread-id-valued args must be remapped with their thread.
            if ev.etype in (
                EventType.THREAD_CREATE,
                EventType.JOIN_BEGIN,
                EventType.JOIN_END,
                EventType.COND_WAKE,
            ):
                arg = tid_map.get(ev.arg, ev.arg)
            events.append(
                Event(
                    seq=ev.seq,
                    time=ev.time + offset,
                    tid=tid_map[ev.tid],
                    etype=ev.etype,
                    obj=obj_map.get(ev.obj, -1) if ev.obj >= 0 else -1,
                    arg=arg,
                )
            )
        tid_base += len(tid_map)
        obj_base += len(obj_map)
        sources.append(
            {"name": trace.meta.get("name", ""), "offset": offset, "prefix": prefix}
        )

    # Cross-trace seq collisions are fine: from_events re-sorts by
    # (time, seq) and renumbers; within a trace relative order is kept
    # because offsets shift whole traces rigidly.
    return Trace.from_events(
        events,
        objects=objects,
        threads=threads,
        meta={"name": "+".join(s["name"] or s["prefix"] for s in sources),
              "merged_from": sources},
    )
