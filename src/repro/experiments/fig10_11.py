"""Paper Figs. 10 and 11 — Radiosity 24-thread quantification tables.

Fig. 10 (contention probability): for the most critical locks, the
invocation count and contention probability *along the critical path*
against the per-thread averages, plus the invocation amplification
("Incr. Times of Invo. #": paper reports 7.01x for ``tq[0].qlock``).

Fig. 11 (critical section size): CP Time % against average hold time,
plus the size amplification ("Incr. Times of Critical Section Size":
paper reports 8.22x for ``tq[0].qlock``).
"""

from __future__ import annotations

from repro.core.analyzer import AnalysisResult, analyze
from repro.experiments.harness import ExperimentResult, experiment
from repro.units import format_percent
from repro.workloads.radiosity import Radiosity

__all__ = ["run", "contention_table", "size_table"]


def contention_table(analysis: AnalysisResult, nlocks: int = 3) -> ExperimentResult:
    """Fig. 10-style contention statistics for the top CP-time locks."""
    rows = []
    values = {}
    for m in analysis.report.top_locks(nlocks):
        rows.append(
            [
                m.name,
                m.invocations_on_cp,
                format_percent(m.cont_prob_on_cp),
                f"{m.avg_invocations:.0f}",
                format_percent(m.avg_cont_prob),
                f"{m.invocation_increase:.2f}",
            ]
        )
        values[m.name] = {
            "invocations_on_cp": m.invocations_on_cp,
            "cont_prob_on_cp": m.cont_prob_on_cp,
            "avg_invocations": m.avg_invocations,
            "avg_cont_prob": m.avg_cont_prob,
            "invocation_increase": m.invocation_increase,
        }
    return ExperimentResult(
        exp_id="fig10",
        title="Contention probability statistics (top locks by CP Time)",
        headers=["Lock", "Invo. # on CP", "Cont. Prob. on CP %", "Avg. Invo. #",
                 "Avg. Cont. Prob %", "Incr. Times of Invo. #"],
        rows=rows,
        values=values,
    )


def size_table(analysis: AnalysisResult, nlocks: int = 3) -> ExperimentResult:
    """Fig. 11-style critical-section size statistics."""
    rows = []
    values = {}
    for m in analysis.report.top_locks(nlocks):
        rows.append(
            [
                m.name,
                format_percent(m.cp_fraction),
                format_percent(m.avg_hold_fraction),
                f"{m.size_increase:.2f}",
            ]
        )
        values[m.name] = {
            "cp_fraction": m.cp_fraction,
            "avg_hold_fraction": m.avg_hold_fraction,
            "size_increase": m.size_increase,
        }
    return ExperimentResult(
        exp_id="fig11",
        title="Critical section size statistics (top locks by CP Time)",
        headers=["Lock", "CP Time %", "Avg. Hold Time %",
                 "Incr. Times of Critical Section Size"],
        rows=rows,
        values=values,
    )


@experiment("fig10_11")
def run(nthreads: int = 24, seed: int = 0) -> ExperimentResult:
    res = Radiosity().run(nthreads=nthreads, seed=seed)
    analysis = analyze(res.trace)
    f10 = contention_table(analysis)
    f11 = size_table(analysis)
    combined = ExperimentResult(
        exp_id="fig10_11",
        title=f"Radiosity quantification at {nthreads} threads",
        headers=f10.headers,
        rows=f10.rows,
        extra_text=f11.render(),
        notes=[
            "paper fig10: tq[0].qlock 26298 on-CP invocations, 78.69% contended, "
            "7.01x amplification; fig11: 39.15% CP from 4.76% avg hold (8.22x)",
        ],
        values={"fig10": f10.values, "fig11": f11.values},
    )
    return combined
