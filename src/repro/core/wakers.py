"""Waker resolution.

For every event that ends a blocked interval, determine which thread (and
which of its events) enabled it — the paper's §IV.B rules:

* lock OBTAIN (contended): "the thread holding the same lock adjacently
  before the blocked thread" — i.e. the RELEASE event immediately
  preceding the OBTAIN on that object;
* BARRIER_DEPART: "the thread reaching the same barrier lastly" — the
  cohort's final BARRIER_ARRIVE;
* COND_WAKE: "the thread signaling the same condition variable" — the
  matching COND_SIGNAL / COND_BROADCAST;
* JOIN_END: the joined thread's THREAD_EXIT;
* THREAD_START: the parent's THREAD_CREATE (used when the backward walk
  reaches the beginning of a non-root thread).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WakerResolutionError
from repro.trace.events import EventType
from repro.trace.trace import Trace

__all__ = ["WakeInfo", "WakerTable", "resolve_wakers"]


@dataclass(frozen=True, slots=True)
class WakeInfo:
    """The waking event: who enabled a wake, and when."""

    waker_tid: int
    waker_time: float
    waker_seq: int


@dataclass(frozen=True, slots=True)
class WakerTable:
    """Output of :func:`resolve_wakers`.

    ``wakes`` maps the *seq of a wake event* (OBTAIN with contended flag,
    BARRIER_DEPART, COND_WAKE, JOIN_END) to its waker; ``creations`` maps
    a child tid to the parent's THREAD_CREATE info.
    """

    wakes: dict[int, WakeInfo]
    creations: dict[int, WakeInfo]


def resolve_wakers(
    trace: Trace,
    barrier_seed: dict[tuple[int, int], WakeInfo] | None = None,
) -> WakerTable:
    """Resolve the waker of every wake event in one pass over the trace.

    ``barrier_seed`` pre-populates the per-(barrier, generation) final
    arrival.  The sharded analyzer uses it when a trace is split right
    after a barrier episode's last arrival: the right shard contains the
    episode's departs but none of its arrivals, so their waker — the cut
    anchor — must be injected.
    """
    wakes: dict[int, WakeInfo] = {}
    creations: dict[int, WakeInfo] = {}
    last_release: dict[int, WakeInfo] = {}  # obj -> most recent RELEASE
    last_signal: dict[int, WakeInfo] = {}  # cond obj -> most recent SIGNAL/BROADCAST
    exits: dict[int, WakeInfo] = {}  # tid -> THREAD_EXIT
    last_event: dict[int, WakeInfo] = {}  # tid -> that thread's latest event

    # Pass 1: the cohort's final arrival per (barrier, generation).  Done
    # up front because hand-built traces may interleave a departure before
    # the cohort's last ARRIVE at equal timestamps.
    last_arrival: dict[tuple[int, int], WakeInfo] = dict(barrier_seed or {})
    for ev in trace:
        if ev.etype == EventType.BARRIER_ARRIVE:
            last_arrival[(ev.obj, ev.arg)] = WakeInfo(ev.tid, ev.time, ev.seq)

    for ev in trace:
        et = ev.etype
        here = WakeInfo(ev.tid, ev.time, ev.seq)
        if et == EventType.RELEASE:
            last_release[ev.obj] = WakeInfo(ev.tid, ev.time, ev.seq)
        elif et == EventType.OBTAIN:
            if ev.arg:  # contended acquisition: waker is the previous releaser
                rel = last_release.get(ev.obj)
                if rel is None:
                    raise WakerResolutionError(
                        f"seq {ev.seq}: contended OBTAIN on "
                        f"{trace.object_name(ev.obj)} with no preceding RELEASE"
                    )
                wakes[ev.seq] = rel
        elif et == EventType.BARRIER_DEPART:
            arr = last_arrival.get((ev.obj, ev.arg))
            if arr is None:
                raise WakerResolutionError(
                    f"seq {ev.seq}: BARRIER_DEPART on {trace.object_name(ev.obj)} "
                    f"generation {ev.arg} with no arrivals"
                )
            wakes[ev.seq] = arr
        elif et in (EventType.COND_SIGNAL, EventType.COND_BROADCAST):
            last_signal[ev.obj] = WakeInfo(ev.tid, ev.time, ev.seq)
        elif et == EventType.COND_WAKE:
            sig = last_signal.get(ev.obj)
            if sig is None or sig.waker_tid != ev.arg:
                # Hand-built traces may omit the COND_SIGNAL event; fall
                # back to the recorded signaller thread's latest event,
                # which is still causally before this wake.
                sig = last_event.get(ev.arg)
                if sig is None:
                    raise WakerResolutionError(
                        f"seq {ev.seq}: COND_WAKE signalled by T{ev.arg} "
                        "which has no prior events"
                    )
            wakes[ev.seq] = sig
        elif et == EventType.THREAD_EXIT:
            exits[ev.tid] = WakeInfo(ev.tid, ev.time, ev.seq)
        elif et == EventType.JOIN_END:
            target = exits.get(ev.arg)
            if target is None:
                raise WakerResolutionError(
                    f"seq {ev.seq}: JOIN_END on T{ev.arg} which has not exited"
                )
            wakes[ev.seq] = target
        elif et == EventType.THREAD_CREATE:
            creations[ev.arg] = here
        last_event[ev.tid] = here
    return WakerTable(wakes=wakes, creations=creations)
