"""Pluggable lock-protocol behavior: ordering, boosting, spinning, RW bias."""

import pytest

from repro.errors import SimulationError
from repro.sim import Program, available_protocols, get_protocol
from repro.sim.protocols import PROTOCOL_DOCS, AdaptiveSpinProtocol


def test_registry_lists_all_documented_protocols():
    assert available_protocols() == sorted(PROTOCOL_DOCS)


def test_get_protocol_unknown_name_lists_available():
    with pytest.raises(SimulationError, match="fifo.*priority"):
        get_protocol("optimistic")


def test_get_protocol_recorded_needs_a_trace():
    with pytest.raises(SimulationError, match="recorded.*trace"):
        get_protocol("recorded")


def test_get_protocol_bad_params_rejected():
    with pytest.raises(SimulationError, match="bad parameters"):
        get_protocol("spin", bogus=1)


def test_fifo_is_the_default_and_explicit_fifo_matches():
    def run(protocol):
        prog = Program(protocol=protocol)
        lock = prog.mutex("lock")

        def worker(env, i):
            yield env.compute(i * 0.1)
            yield env.acquire(lock)
            yield env.compute(1.0)
            yield env.release(lock)

        prog.spawn_workers(3, worker)
        return prog.run().completion_time

    assert run(None) == run("fifo")


def test_priority_protocol_grants_highest_waiter_first():
    # holder releases at t=1; the priority-2 waiter (which arrived
    # *after* the priority-1 waiter) must be granted first.
    prog = Program(protocol="priority")
    lock = prog.mutex("lock")
    order = []

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(1.0)
        yield env.release(lock)

    def waiter(env, tag, delay):
        yield env.compute(delay)
        yield env.acquire(lock)
        order.append((tag, env.now))
        yield env.compute(1.0)
        yield env.release(lock)

    prog.spawn(holder)
    prog.spawn(waiter, "low", 0.2, priority=1)
    prog.spawn(waiter, "high", 0.4, priority=2)
    prog.run()
    assert order == [("high", 1.0), ("low", 2.0)]


def test_priority_protocol_fifo_among_equals():
    prog = Program(protocol="priority")
    lock = prog.mutex("lock")
    order = []

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(1.0)
        yield env.release(lock)

    def waiter(env, tag, delay):
        yield env.compute(delay)
        yield env.acquire(lock)
        order.append(tag)
        yield env.release(lock)

    prog.spawn(holder)
    prog.spawn(waiter, "first", 0.2, priority=3)
    prog.spawn(waiter, "second", 0.4, priority=3)
    prog.run()
    assert order == ["first", "second"]


def _inversion_program(protocol, acquired, **proto_kwargs):
    """The classic priority-inversion scenario on one core.

    L (prio 0) takes the lock, then yields the core; H (prio 2) runs,
    blocks on the lock; the freed core goes to whoever the scheduler
    now ranks highest — M (prio 1), unless the protocol boosts L.
    """
    prog = Program(cores=1, scheduler="priority",
                   protocol=get_protocol(protocol, **proto_kwargs))
    lock = prog.mutex("lock")

    def high(env):
        yield env.acquire(lock)
        acquired.append(env.now)
        yield env.release(lock)

    def med(env):
        yield env.compute(1.0)

    def low(env):
        yield env.spawn(high, name="H", priority=2)
        yield env.spawn(med, name="M", priority=1)
        yield env.acquire(lock)  # L still holds the only core: lock is free
        yield env.yield_core()
        yield env.compute(2.0)  # critical section
        yield env.release(lock)

    prog.spawn(low, name="L", priority=0)
    return prog


def test_plain_priority_suffers_inversion():
    # No boosting: after H blocks, M (prio 1) outranks L (prio 0) for
    # the core, so H waits through M's compute as well.
    acquired = []
    _inversion_program("priority", acquired).run()
    assert acquired == [3.0]


def test_priority_inheritance_avoids_inversion():
    # H's block boosts L to priority 2, so L wins the core over M and
    # finishes its critical section first.
    acquired = []
    _inversion_program("pi", acquired).run()
    assert acquired == [2.0]


def test_priority_ceiling_boosts_on_acquire():
    # Ceiling boosts L the moment it takes the lock — before H even
    # blocks — so the outcome matches inheritance.
    acquired = []
    _inversion_program("ceiling", acquired, ceilings={"lock": 2}).run()
    assert acquired == [2.0]


def test_priority_ceiling_default_is_max_base_priority():
    acquired = []
    _inversion_program("ceiling", acquired).run()
    assert acquired == [2.0]


def test_pi_boost_dropped_after_release():
    # After L releases, its boost must return to 0: with the lock free,
    # M (prio 1) beats L's remaining compute for the single core.
    prog = Program(cores=1, scheduler="priority", protocol="pi")
    lock = prog.mutex("lock")
    done = []

    def high(env):
        yield env.acquire(lock)
        yield env.release(lock)

    def med(env):
        yield env.compute(1.0)
        done.append(("M", env.now))

    def low(env):
        yield env.acquire(lock)
        yield env.spawn(high, name="H", priority=2)
        yield env.spawn(med, name="M", priority=1)
        yield env.yield_core()
        yield env.compute(1.0)
        yield env.release(lock)
        yield env.yield_core()  # re-queue: boost is gone, M goes first
        yield env.compute(1.0)
        done.append(("L", env.now))

    prog.spawn(low, name="L", priority=0)
    prog.run()
    assert done == [("M", 2.0), ("L", 3.0)]


def test_spin_short_wait_avoids_handoff_latency():
    # Wait (0.3) is inside the spin window: the handoff is immediate.
    prog = Program(protocol=AdaptiveSpinProtocol(spin_limit=0.5, wake_latency=0.25))
    lock = prog.mutex("lock")
    got = []

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(0.3)
        yield env.release(lock)

    def waiter(env):
        yield env.acquire(lock)
        got.append(env.now)
        yield env.release(lock)

    prog.spawn(holder)
    prog.spawn(waiter)
    prog.run()
    assert got == [0.3]


def test_spin_long_wait_pays_wake_latency():
    # Wait (2.0) exceeds the spin window: the waiter blocked and its
    # grant pays the wake-up latency.
    prog = Program(protocol=AdaptiveSpinProtocol(spin_limit=0.5, wake_latency=0.25))
    lock = prog.mutex("lock")
    got = []

    def holder(env):
        yield env.acquire(lock)
        yield env.compute(2.0)
        yield env.release(lock)

    def waiter(env):
        yield env.acquire(lock)
        got.append(env.now)
        yield env.release(lock)

    prog.spawn(holder)
    prog.spawn(waiter)
    prog.run()
    assert got == [2.25]


def test_reader_preference_jumps_queued_writer():
    # Same shape as the FIFO fairness pin in test_rwlock.py, opposite
    # outcome: the late reader joins the active read phase past the
    # queued writer.
    prog = Program(protocol="reader-pref")
    rw = prog.rwlock("rw")
    order = []

    def reader_a(env):
        yield env.rw_acquire_read(rw)
        yield env.compute(2.0)
        yield env.rw_release_read(rw)

    def writer(env):
        yield env.compute(0.5)
        yield env.rw_acquire_write(rw)
        order.append(("w", env.now))
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader_b(env):
        yield env.compute(1.0)
        yield env.rw_acquire_read(rw)
        order.append(("rb", env.now))
        yield env.rw_release_read(rw)

    prog.spawn(reader_a)
    prog.spawn(writer)
    prog.spawn(reader_b)
    prog.run()
    assert order == [("rb", 1.0), ("w", 2.0)]


def test_writer_preference_overtakes_earlier_readers():
    # Writer holds; R1, R2 queue, then W2 queues last.  Writer
    # preference grants W2 before the readers.
    prog = Program(protocol="writer-pref")
    rw = prog.rwlock("rw")
    order = []

    def holder(env):
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader(env, tag, delay):
        yield env.compute(delay)
        yield env.rw_acquire_read(rw)
        order.append((tag, env.now))
        yield env.rw_release_read(rw)

    def writer(env, tag, delay):
        yield env.compute(delay)
        yield env.rw_acquire_write(rw)
        order.append((tag, env.now))
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    prog.spawn(holder)
    prog.spawn(reader, "r1", 0.2)
    prog.spawn(reader, "r2", 0.4)
    prog.spawn(writer, "w2", 0.6)
    prog.run()
    assert order == [("w2", 1.0), ("r1", 2.0), ("r2", 2.0)]


def test_phase_fair_alternates_phases():
    # Writer holds; queue R1, W2, R2.  Phase-fair after a write phase
    # runs a read phase (both queued readers), then the writer — the
    # writer cannot monopolize, nor can readers starve it.
    prog = Program(protocol="phase-fair")
    rw = prog.rwlock("rw")
    order = []

    def holder(env):
        yield env.rw_acquire_write(rw)
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    def reader(env, tag, delay):
        yield env.compute(delay)
        yield env.rw_acquire_read(rw)
        order.append((tag, env.now))
        yield env.compute(1.0)
        yield env.rw_release_read(rw)

    def writer(env, tag, delay):
        yield env.compute(delay)
        yield env.rw_acquire_write(rw)
        order.append((tag, env.now))
        yield env.compute(1.0)
        yield env.rw_release_write(rw)

    prog.spawn(holder)
    prog.spawn(reader, "r1", 0.2)
    prog.spawn(writer, "w2", 0.4)
    prog.spawn(reader, "r2", 0.6)
    prog.run()
    assert order == [("r1", 1.0), ("r2", 1.0), ("w2", 2.0)]


def test_non_default_protocol_recorded_in_trace_meta():
    prog = Program(protocol="priority")
    lock = prog.mutex("lock")

    def worker(env, i):
        yield env.acquire(lock)
        yield env.compute(0.1)
        yield env.release(lock)

    prog.spawn_workers(2, worker)
    result = prog.run()
    assert result.trace.meta["protocol"] == "priority"
    assert "scheduler" not in result.trace.meta


def test_default_fifo_not_recorded_in_trace_meta():
    prog = Program()
    lock = prog.mutex("lock")

    def worker(env, i):
        yield env.acquire(lock)
        yield env.release(lock)

    prog.spawn_workers(2, worker)
    assert "protocol" not in prog.run().trace.meta
