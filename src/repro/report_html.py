"""Self-contained HTML reports.

Bundles everything a performance investigation produces — the summary,
TYPE 1 / TYPE 2 tables, the SVG execution timeline with critical-path
overlay, windowed criticality, what-if predictions and the scalability
forecast — into one dependency-free HTML file you can attach to a bug
report or code review.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.core.analyzer import AnalysisResult, analyze
from repro.core.forecast import forecast
from repro.errors import AnalysisError
from repro.core.windows import windowed_criticality
from repro.trace.trace import Trace
from repro.units import format_percent
from repro.viz.svg import render_svg

__all__ = ["render_html_report", "write_html_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 1000px; color: #212121; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; font-size: 0.9em; }
th, td { border: 1px solid #ddd; padding: 4px 10px; text-align: right; }
th { background: #f5f5f5; } td:first-child, th:first-child { text-align: left; }
tr.critical td { background: #FFF3E0; }
.note { color: #616161; font-size: 0.85em; }
svg { max-width: 100%; height: auto; border: 1px solid #eee; }
"""


def _table(headers: list[str], rows: list[list], critical_rows: set[int] = frozenset()) -> str:
    head = "".join(f"<th>{escape(str(h))}</th>" for h in headers)
    body = []
    for i, row in enumerate(rows):
        cls = ' class="critical"' if i in critical_rows else ""
        cells = "".join(f"<td>{escape(str(c))}</td>" for c in row)
        body.append(f"<tr{cls}>{cells}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def render_html_report(
    trace: Trace,
    analysis: AnalysisResult | None = None,
    nwindows: int = 8,
    title: str | None = None,
) -> str:
    """Render the full report as an HTML string."""
    if analysis is None:
        analysis = analyze(trace, validate=False)
    report = analysis.report
    name = title or report.name or "critical lock analysis"
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{escape(name)}</title><style>{_STYLE}</style></head><body>",
        f"<h1>Critical lock analysis — {escape(name)}</h1>",
        f"<p>{report.nthreads} threads · completion time "
        f"{report.duration:.6g} · critical path length "
        f"{analysis.critical_path.length:.6g} "
        f"({len(analysis.critical_path.pieces)} pieces) · hot critical "
        f"sections cover {format_percent(report.total_cp_lock_fraction)} "
        "of the path</p>",
    ]

    # TYPE 1 table (critical locks highlighted).
    type1_rows = []
    critical = set()
    for i, m in enumerate(report.top_locks(10)):
        if m.is_critical:
            critical.add(i)
        type1_rows.append(
            [
                m.name,
                format_percent(m.cp_fraction),
                m.invocations_on_cp,
                format_percent(m.cont_prob_on_cp),
                f"{m.invocation_increase:.2f}",
                f"{m.size_increase:.2f}",
            ]
        )
    parts.append("<h2>TYPE 1 — along the critical path</h2>")
    parts.append(
        _table(
            ["Lock", "CP Time %", "Invo. # on CP", "Cont. Prob. on CP",
             "Incr. Invo.", "Incr. Size"],
            type1_rows,
            critical,
        )
    )

    parts.append("<h2>TYPE 2 — classical statistics</h2>")
    parts.append(
        _table(
            ["Lock", "Wait Time %", "Avg. Invo. #", "Avg. Cont. Prob",
             "Avg. Hold Time %"],
            [
                [
                    m.name,
                    format_percent(m.avg_wait_fraction),
                    f"{m.avg_invocations:.1f}",
                    format_percent(m.avg_cont_prob),
                    format_percent(m.avg_hold_fraction),
                ]
                for m in report.top_locks(10, by="avg_wait_fraction")
            ],
        )
    )

    parts.append("<h2>Execution timeline</h2>")
    parts.append(render_svg(trace, analysis))

    # Windowed criticality.
    if trace.duration > 0:
        wc = windowed_criticality(analysis, nwindows=nwindows)
        import numpy as np

        order = np.argsort(wc.shares.sum(axis=0))[::-1][:5]
        parts.append("<h2>Criticality over time</h2>")
        parts.append(
            _table(
                ["Window"] + [wc.lock_names[i] for i in order] + ["Dominant"],
                [
                    [f"[{wc.window_edges[w]:.4g}, {wc.window_edges[w + 1]:.4g})"]
                    + [format_percent(wc.shares[w, i]) for i in order]
                    + [wc.dominant_lock(w) or "-"]
                    for w in range(wc.nwindows)
                ],
            )
        )

    # What-if for the top critical locks (both counterfactual modes).
    whatif_rows = []
    for m in report.critical_locks[:3]:
        r = analysis.what_if(m.obj, factor=0.5)
        whatif_rows.append(
            [m.name, "halve critical sections", f"{r.predicted_speedup:.3f}",
             format_percent(r.predicted_gain)]
        )
        r2 = analysis.what_if_no_contention(m.obj)
        whatif_rows.append(
            [m.name, "eliminate contention (ACS/TM)",
             f"{r2.predicted_speedup:.3f}", format_percent(r2.predicted_gain)]
        )
    if whatif_rows:
        parts.append("<h2>What-if predictions</h2>")
        parts.append(
            _table(["Lock", "Change", "Predicted speedup", "Gain"], whatif_rows)
        )

    # Per-thread attribution of the single most critical lock.
    if report.critical_locks:
        from repro.core.attribution import attribute_lock

        top = report.critical_locks[0]
        att = attribute_lock(analysis, top.obj)
        parts.append(f"<h2>Who holds {escape(top.name)} on the path</h2>")
        parts.append(
            _table(
                ["Thread", "Invocations", "On CP", "Cont. on CP", "CP Time %"],
                [
                    [
                        s.thread_name,
                        s.invocations,
                        s.invocations_on_cp,
                        format_percent(s.cont_prob_on_cp),
                        format_percent(
                            s.cp_hold_time / att.cp_length if att.cp_length else 0
                        ),
                    ]
                    for s in att.shares[:8]
                ],
            )
        )

    # Scalability forecast.  Only the documented "no forecast possible"
    # condition is skippable (AnalysisError on zero total execution
    # work); a genuine forecast bug must propagate, not vanish from the
    # report.
    try:
        fc = forecast(analysis)
        parts.append("<h2>Scalability forecast</h2>")
        rows = []
        for lf in fc.locks[:5]:
            n_star = lf.saturation_threads(fc.total_work)
            rows.append(
                [
                    lf.name,
                    lf.invocations,
                    f"{lf.serial_demand:.4g}",
                    "never" if n_star == float("inf") else f"{n_star:.1f}",
                ]
            )
        parts.append(
            _table(["Lock", "Invocations", "Serial demand", "Saturates at N"], rows)
        )
        parts.append(
            "<p class='note'>roofline model: completion ≥ max(work/N, "
            "largest serial lock demand); see docs/extensions.md</p>"
        )
    except AnalysisError:  # zero-work traces have no forecast
        pass

    parts.append("</body></html>")
    return "".join(parts)


def write_html_report(
    trace: Trace,
    path: str | Path,
    analysis: AnalysisResult | None = None,
    nwindows: int = 8,
    title: str | None = None,
) -> Path:
    """Write the HTML report to ``path``."""
    path = Path(path)
    path.write_text(
        render_html_report(trace, analysis, nwindows, title), encoding="utf-8"
    )
    return path
