"""Content-addressed result cache: bounded LRU in memory, spill to disk.

Keys are the job's :meth:`~repro.service.jobs.JobSpec.cache_key` — a
sha256 over (trace digests, analysis kind, canonical params) — so a hit
is only possible for byte-identical questions about content-identical
traces.  Values are finished report dicts (JSON-serializable by
construction), which is what makes the disk tier trivial: evicted
entries are written as ``<key>.json`` and promoted back on access.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.errors import ServiceError

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU of analysis results with an optional disk tier."""

    def __init__(
        self,
        capacity: int = 256,
        disk_dir: str | Path | None = None,
        disk_capacity: int = 4096,
    ):
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.disk_capacity = disk_capacity
        self._dir = Path(disk_dir) if disk_dir is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._mem: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        """Look a key up; promotes hits to most-recently-used."""
        with self._lock:
            value = self._mem.get(key)
            if value is not None:
                self._mem.move_to_end(key)
                self.hits += 1
                return value
            value = self._disk_load(key)
            if value is not None:
                self.hits += 1
                self.disk_hits += 1
                self._insert(key, value)  # promote back into memory
                return value
            self.misses += 1
            return None

    def put(self, key: str, value: dict[str, Any]) -> None:
        with self._lock:
            self._insert(key, value)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._mem or self._disk_path_if_exists(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._mem),
                "capacity": self.capacity,
                "disk_entries": self._disk_count(),
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

    # -- internals (callers hold self._lock) --------------------------------

    def _insert(self, key: str, value: dict) -> None:
        self._mem[key] = value
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            old_key, old_value = self._mem.popitem(last=False)
            self.evictions += 1
            self._disk_store(old_key, old_value)

    def _disk_path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def _disk_path_if_exists(self, key: str) -> Path | None:
        if self._dir is None:
            return None
        path = self._disk_path(key)
        return path if path.exists() else None

    def _disk_load(self, key: str) -> dict | None:
        path = self._disk_path_if_exists(key)
        if path is None:
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # A torn write (crash mid-spill) must read as a miss, not an error.
            return None

    def _disk_store(self, key: str, value: dict) -> None:
        if self._dir is None:
            return
        tmp = self._disk_path(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(value), encoding="utf-8")
        tmp.replace(self._disk_path(key))
        files = sorted(self._dir.glob("*.json"), key=lambda p: p.stat().st_mtime)
        while len(files) > self.disk_capacity:
            files.pop(0).unlink(missing_ok=True)

    def _disk_count(self) -> int:
        if self._dir is None:
            return 0
        return sum(1 for _ in self._dir.glob("*.json"))
