"""Traced condition variable for real threads (paper Fig. 4, ``pthread_cond_*``).

Records COND_BLOCK before waiting and COND_WAKE after, with the
signaller's tid captured through a slot written under the shared lock by
``notify``/``notify_all`` (the paper's "which thread blocked the thread
waiting for a condition variable").  Because ``threading.Condition``
reacquires the mutex internally, the reacquisition is recorded as an
uncontended acquire at wake time and any reacquisition delay is folded
into the condition wait — a documented deviation from the simulator's
exact accounting.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import SyncUsageError
from repro.instrument.locks import TracedLock
from repro.trace.events import EventType, ObjectKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.instrument.session import ProfilingSession

__all__ = ["TracedCondition"]

_real_condition_factory = threading.Condition  # bound pre-patching (see autopatch)


class TracedCondition:
    """Drop-in ``threading.Condition`` replacement recording cond events."""

    __slots__ = ("session", "obj", "name", "lock", "_real", "_last_signaller")

    def __init__(
        self,
        session: "ProfilingSession",
        lock: TracedLock | None = None,
        name: str = "",
    ):
        self.session = session
        self.name = name
        self.obj = session.register_object(ObjectKind.CONDITION, name)
        self.lock = lock if lock is not None else TracedLock(session, f"{name}.lock")
        self._real = _real_condition_factory(self.lock.real_lock)
        self._last_signaller: int = -1

    def wait(self, timeout: float | None = None) -> bool:
        """Wait for a signal; the traced lock must be held."""
        s = self.session
        if not self.lock.locked():
            raise SyncUsageError(f"cond_wait on {self.name!r} without holding its lock")
        t0 = s.emit_here(EventType.COND_BLOCK, obj=self.obj)
        s.emit_here(EventType.RELEASE, obj=self.lock.obj, at_ns=t0)
        ok = self._real.wait(timeout)
        # We hold the lock again; _last_signaller was written under it.
        signaller = self._last_signaller if ok else s.current_tid()
        t1 = s.emit_here(EventType.COND_WAKE, obj=self.obj, arg=signaller)
        s.emit_here(EventType.ACQUIRE, obj=self.lock.obj, at_ns=t1)
        s.emit_here(EventType.OBTAIN, obj=self.lock.obj, arg=0, at_ns=t1)
        return ok

    def wait_for(self, predicate, timeout: float | None = None) -> bool:
        """``threading.Condition.wait_for`` equivalent over traced waits."""
        result = predicate()
        while not result:
            if not self.wait(timeout):
                return bool(predicate())
            result = predicate()
        return bool(result)

    def notify(self, n: int = 1) -> None:
        """Wake up to ``n`` waiters; the traced lock must be held."""
        self._last_signaller = self.session.current_tid()
        self.session.emit_here(EventType.COND_SIGNAL, obj=self.obj, arg=n)
        self._real.notify(n)

    def notify_all(self) -> None:
        """Wake all waiters; the traced lock must be held."""
        self._last_signaller = self.session.current_tid()
        self.session.emit_here(EventType.COND_BROADCAST, obj=self.obj, arg=0)
        self._real.notify_all()

    def __enter__(self) -> "TracedCondition":
        self.lock.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.lock.release()
