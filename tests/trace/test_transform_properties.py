"""Property tests for trace slicing over random programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import analyze
from repro.trace.transform import filter_threads, slice_time
from repro.trace.validate import validate_trace

from tests.core.test_properties import program_st, run_random_program

window_st = st.tuples(
    program_st,
    st.floats(min_value=0.0, max_value=0.6),
    st.floats(min_value=0.05, max_value=1.0),
)


@settings(max_examples=30, deadline=None)
@given(window_st)
def test_slices_stay_valid_and_analyzable(spec):
    program, lo_frac, width_frac = spec
    result = run_random_program(program)
    trace = result.trace
    if trace.duration <= 0:
        return
    lo = trace.start_time + lo_frac * trace.duration
    hi = min(trace.end_time, lo + width_frac * trace.duration)
    if hi <= lo:
        return
    sub = slice_time(trace, lo, hi)
    validate_trace(sub)
    analysis = analyze(sub)
    # The slice cannot be longer than its window.
    assert analysis.report.duration <= (hi - lo) + 1e-9
    # CP invariants still hold inside the slice.
    assert analysis.critical_path.coverage_error == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(program_st)
def test_full_window_slice_preserves_lock_totals(spec):
    result = run_random_program(spec)
    trace = result.trace
    if trace.duration <= 0:
        return
    sub = slice_time(trace, trace.start_time, trace.end_time)
    validate_trace(sub)
    a_orig = analyze(trace)
    a_sub = analyze(sub)
    for m in a_orig.report.locks.values():
        m2 = a_sub.report.locks[m.obj]
        assert m2.total_invocations == m.total_invocations
        assert m2.total_hold_time == pytest.approx(m.total_hold_time, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(program_st, st.integers(min_value=1, max_value=3))
def test_thread_filter_stays_valid(spec, keep):
    result = run_random_program(spec)
    tids = result.trace.thread_ids[:keep]
    sub = filter_threads(result.trace, tids)
    validate_trace(sub)
    assert set(sub.thread_ids) <= set(tids)
    analyze(sub, validate=False)
