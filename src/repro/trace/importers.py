"""Importers for foreign lock-event dumps.

Real captures do not arrive in this tool's native ``.clt``/``.cls``
formats: kernel and userspace profilers (``perf lock contention``,
eBPF-based tracers) emit flat per-event text dumps.  This module maps
the common denominator of those dumps — one JSON object per line with a
timestamp, a thread id, a lock name and an event verb — onto the native
event model so the exact analyzer and the statistical estimator
(:func:`repro.core.estimate.estimate_report`) run on them unchanged.

perf-style JSONL format
-----------------------
One event per line::

    {"ts": 0.0012, "tid": 17, "event": "acquire",  "lock": "rq->lock"}
    {"ts": 0.0019, "tid": 17, "event": "acquired", "lock": "rq->lock"}
    {"ts": 0.0044, "tid": 17, "event": "release",  "lock": "rq->lock"}

``ts`` is seconds (float), ``tid`` the OS thread id, ``event`` one of
``acquire`` (the thread starts acquiring), ``acquired`` (it got the
lock) and ``released``/``release``.  Optional fields: ``comm`` (thread
name, first occurrence wins), ``contended`` (bool, overrides the
inferred contention flag).  An ``acquired`` with no open ``acquire`` is
taken as an uncontended acquisition at its own timestamp; contention is
otherwise inferred from ``ts(acquired) > ts(acquire)``.

The importer is strict about what it cannot repair and tolerant about
what it can:

* malformed JSON, non-object lines, unknown fields, unknown event
  verbs, missing required fields and per-thread timestamp regressions
  raise :class:`~repro.errors.TraceFormatError` with the offending
  ``path:line``;
* unmatched releases are dropped and still-open holds are closed at the
  thread's last timestamp (counts land in ``meta["import"]``);
* contended acquisitions whose waking release precedes the capture
  window are demoted via
  :func:`repro.trace.transform.demote_orphan_contention`, the same
  repair sampled captures use.

Thread lifecycle events are synthesized (first/last per-thread
timestamp), so the result is a fully valid :class:`Trace` whose
``meta["source"]`` is ``"import:perf-jsonl"``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import TraceFormatError
from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.trace import ObjectInfo, Trace
from repro.trace.transform import demote_orphan_contention
from repro.trace.validate import validate_trace

__all__ = ["import_trace", "import_perf_jsonl", "IMPORT_FORMATS"]

_REQUIRED = ("ts", "tid", "event", "lock")
_OPTIONAL = ("comm", "contended")
_VERBS = ("acquire", "acquired", "release", "released")


def _fail(path: Path, lineno: int, msg: str) -> TraceFormatError:
    return TraceFormatError(f"{path}:{lineno}: {msg}")


def import_perf_jsonl(path: str | Path, validate: bool = True) -> Trace:
    """Import a perf-style JSONL lock-event dump (see module docstring)."""
    path = Path(path)
    objects: dict[str, int] = {}  # lock name -> obj id
    threads: dict[int, str] = {}  # tid -> name
    spans: dict[int, tuple[float, float]] = {}  # tid -> (first ts, last ts)
    # (tid, obj) -> acquire time of the open acquisition attempt
    acquiring: dict[tuple[int, int], float] = {}
    # (tid, obj) -> open hold count (reentrant holds close LIFO)
    holding: dict[tuple[int, int], int] = {}
    events: list[Event] = []
    seq = 0
    dropped_releases = 0

    def emit(time: float, tid: int, etype: EventType, obj: int = -1, arg: int = 0) -> None:
        nonlocal seq
        events.append(Event(seq=seq, time=time, tid=tid, etype=etype, obj=obj, arg=arg))
        seq += 1

    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise _fail(path, lineno, f"malformed JSON: {exc.msg}") from exc
            if not isinstance(doc, dict):
                raise _fail(path, lineno, f"expected an object, got {type(doc).__name__}")
            unknown = set(doc) - set(_REQUIRED) - set(_OPTIONAL)
            if unknown:
                raise _fail(path, lineno, f"unknown field(s): {', '.join(sorted(unknown))}")
            missing = [f for f in _REQUIRED if f not in doc]
            if missing:
                raise _fail(path, lineno, f"missing field(s): {', '.join(missing)}")
            verb = doc["event"]
            if verb not in _VERBS:
                raise _fail(
                    path,
                    lineno,
                    f"unknown event {verb!r} (expected one of {', '.join(_VERBS)})",
                )
            try:
                ts = float(doc["ts"])
                tid = int(doc["tid"])
            except (TypeError, ValueError) as exc:
                raise _fail(path, lineno, f"bad ts/tid: {exc}") from exc
            lock = str(doc["lock"])

            if tid not in threads:
                threads[tid] = str(doc.get("comm", "")) or f"T{tid}"
                spans[tid] = (ts, ts)
            else:
                first, last = spans[tid]
                if ts < last:
                    raise _fail(
                        path,
                        lineno,
                        f"timestamp goes backwards for tid {tid}: "
                        f"{ts!r} after {last!r}",
                    )
                spans[tid] = (first, ts)
            obj = objects.setdefault(lock, len(objects))
            key = (tid, obj)

            if verb == "acquire":
                acquiring[key] = ts
            elif verb == "acquired":
                acquire_ts = acquiring.pop(key, ts)
                contended = bool(doc.get("contended", ts > acquire_ts))
                emit(acquire_ts, tid, EventType.ACQUIRE, obj)
                emit(ts, tid, EventType.OBTAIN, obj, arg=int(contended))
                holding[key] = holding.get(key, 0) + 1
            else:  # release / released
                if holding.get(key, 0) <= 0:
                    dropped_releases += 1  # hold opened before the capture
                    continue
                holding[key] -= 1
                emit(ts, tid, EventType.RELEASE, obj)

    if not events:
        raise TraceFormatError(f"{path}: no lock events found")

    # Close holds still open at the end of the capture window and bracket
    # every thread's events with a synthesized lifecycle.
    forced_closes = 0
    for (tid, obj), count in sorted(holding.items()):
        for _ in range(count):
            emit(spans[tid][1], tid, EventType.RELEASE, obj)
            forced_closes += 1
    # Leading THREAD_STARTs get negative seqs so they sort before real
    # events at the same timestamp; trailing THREAD_EXITs keep ascending
    # seqs past every real event (from_events renumbers afterwards).
    lead = -1_000_000_000
    for tid, (first, last) in sorted(spans.items()):
        events.append(
            Event(seq=lead, time=first, tid=tid, etype=EventType.THREAD_START, obj=-1, arg=0)
        )
        lead += 1
        emit(last, tid, EventType.THREAD_EXIT)

    obj_table = {
        oid: ObjectInfo(obj=oid, kind=ObjectKind.MUTEX, name=name)
        for name, oid in objects.items()
    }
    meta: dict[str, Any] = {
        "name": path.stem,
        "source": "import:perf-jsonl",
        "import": {
            "file": path.name,
            "dropped_releases": dropped_releases,
            "forced_closes": forced_closes,
            "dangling_acquires": len(acquiring),
        },
    }
    trace = Trace.from_events(events, objects=obj_table, threads=threads, meta=meta)
    trace, demoted = demote_orphan_contention(trace)
    if demoted:
        trace.meta["import"]["demoted_waits"] = demoted
    if validate:
        validate_trace(trace)
    return trace


#: Supported foreign formats and their importers.
IMPORT_FORMATS = {"perf-jsonl": import_perf_jsonl}


def import_trace(path: str | Path, format: str = "perf-jsonl", validate: bool = True) -> Trace:
    """Import a foreign lock-event dump as a native :class:`Trace`.

    ``format`` selects the importer (:data:`IMPORT_FORMATS`); only
    ``"perf-jsonl"`` exists today, but the CLI ``import`` subcommand and
    the service layer go through this dispatcher so new formats plug in
    here.
    """
    importer = IMPORT_FORMATS.get(format)
    if importer is None:
        known = ", ".join(sorted(IMPORT_FORMATS))
        raise TraceFormatError(f"unknown import format {format!r} (known: {known})")
    return importer(path, validate=validate)
