"""Program specs: the data model of the trace-fuzzing harness.

A :class:`ProgramSpec` is a fully serializable description of a random
multithreaded program — synchronization-object counts plus one op tree
per root thread.  Ops are plain dicts so specs round-trip through JSON
repro files unchanged; the grammar is:

=============  ==========================================================
op             fields / meaning
=============  ==========================================================
``compute``    ``dur`` — run for that much virtual time
``lock``       ``m``, ``body`` — hold mutex ``m`` around nested ops
``trylock``    ``m``, ``dur`` — non-blocking attempt; short CS on success
``rw``         ``rw``, ``write``, ``dur`` — read/write-locked section
``sem``        ``s``, ``dur`` — semaphore-guarded section
``produce``    ``ch``, ``broadcast`` — add a token to a cond-var channel
``consume``    ``ch`` — take one token, cond-waiting while empty
``barrier``    arrive at the root-cohort barrier (root threads only)
``spawn``      ``ops`` — create a child thread; joined at thread end
=============  ==========================================================

The generator only emits deadlock-free compositions (ordered blocking
locks, per-phase produce/consume coverage, column-aligned barriers); the
shrinker preserves those invariants structurally or relies on the
re-execution predicate to reject candidates that break them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import CheckError

__all__ = ["FORMAT", "ThreadSpec", "ProgramSpec"]

#: Repro-file format tag (bump on incompatible grammar changes).
FORMAT = "cla-check/1"

Op = dict  # alias for readability; ops are JSON-style dicts


def _child_list(node: Op) -> list[Op] | None:
    """The nested op list of a node, if it has one."""
    if node["op"] == "lock":
        return node["body"]
    if node["op"] == "spawn":
        return node["ops"]
    return None


@dataclass
class ThreadSpec:
    """One root thread: a name and its op tree."""

    name: str
    ops: list[Op] = field(default_factory=list)


@dataclass
class ProgramSpec:
    """A complete generated program (see module docstring)."""

    seed: int
    n_mutexes: int = 1
    n_rwlocks: int = 0
    n_sems: int = 0
    sem_values: list[int] = field(default_factory=list)
    n_channels: int = 0
    barrier_rounds: int = 0
    threads: list[ThreadSpec] = field(default_factory=list)

    # -- traversal ---------------------------------------------------------

    def iter_ops(self) -> Iterator[tuple[int, tuple[int, ...], Op]]:
        """Yield ``(thread_index, path, node)`` over every op node (DFS).

        ``path`` indexes nested op lists: ``path[0]`` into the thread's
        top-level ops, each further element into the previous node's
        child list (lock body / spawn ops).
        """
        def walk(ops: list[Op], prefix: tuple[int, ...], ti: int):
            for i, node in enumerate(ops):
                path = prefix + (i,)
                yield ti, path, node
                child = _child_list(node)
                if child is not None:
                    yield from walk(child, path, ti)

        for ti, t in enumerate(self.threads):
            yield from walk(t.ops, (), ti)

    def op_count(self) -> int:
        """Total number of op nodes across all threads."""
        return sum(1 for _ in self.iter_ops())

    def resolve(self, ti: int, path: tuple[int, ...]) -> tuple[list[Op], int]:
        """The ``(containing_list, index)`` a path points into."""
        ops = self.threads[ti].ops
        for step in path[:-1]:
            child = _child_list(ops[step])
            if child is None:
                raise CheckError(f"path {path} descends into a leaf op")
            ops = child
        return ops, path[-1]

    @property
    def has_nested_holds(self) -> bool:
        """Whether any thread holds two lock-like objects at once.

        True when a ``lock`` body contains (in the same thread) another
        hold-taking op — including ``produce``, which briefly takes its
        channel's mutex.  ``spawn`` bodies run in a different thread and
        do not count.
        """
        def nested(ops: list[Op], holding: bool) -> bool:
            for node in ops:
                kind = node["op"]
                if holding and kind in ("lock", "trylock", "rw", "sem", "produce"):
                    return True
                if kind == "lock" and nested(node["body"], True):
                    return True
                if kind == "spawn" and nested(node["ops"], False):
                    return True
            return False

        return any(nested(t.ops, False) for t in self.threads)

    def transform(self, fn: Callable[["ProgramSpec"], None]) -> "ProgramSpec":
        """Deep-copy this spec and apply an in-place mutation to the copy."""
        clone = ProgramSpec.from_dict(self.to_dict())
        fn(clone)
        return clone

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "seed": self.seed,
            "n_mutexes": self.n_mutexes,
            "n_rwlocks": self.n_rwlocks,
            "n_sems": self.n_sems,
            "sem_values": list(self.sem_values),
            "n_channels": self.n_channels,
            "barrier_rounds": self.barrier_rounds,
            "threads": [{"name": t.name, "ops": t.ops} for t in self.threads],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ProgramSpec":
        fmt = raw.get("format", FORMAT)
        if fmt != FORMAT:
            raise CheckError(f"unsupported spec format {fmt!r} (expected {FORMAT})")
        try:
            return cls(
                seed=int(raw["seed"]),
                n_mutexes=int(raw["n_mutexes"]),
                n_rwlocks=int(raw.get("n_rwlocks", 0)),
                n_sems=int(raw.get("n_sems", 0)),
                sem_values=[int(v) for v in raw.get("sem_values", [])],
                n_channels=int(raw.get("n_channels", 0)),
                barrier_rounds=int(raw.get("barrier_rounds", 0)),
                threads=[
                    ThreadSpec(name=str(t["name"]), ops=json.loads(json.dumps(t["ops"])))
                    for t in raw.get("threads", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckError(f"malformed program spec: {exc}") from exc

    def to_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "ProgramSpec":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckError(f"cannot read spec file {path}: {exc}") from exc
        return cls.from_dict(raw)
