"""Benchmarks for the differential checker and the DAG source-position hoist.

Two concerns:

* ``build_event_graph`` now derives the root THREAD_START positions once
  and caches them on the graph (``EventGraph.source_pos``).  The hoist
  benchmark contrasts the cached path with the old behaviour (re-derive
  on every backtracking call) on a trace with many repeated
  ``critical_events`` calls, the access pattern of the differential
  oracle and the what-if engine.
* End-to-end seed throughput of ``repro check`` — the CI job runs 50
  seeds, so a regression here slows every pipeline run.
"""

import pytest

from repro.check.runner import run_seeds
from repro.core.dag import build_event_graph
from repro.workloads import SyntheticLocks


@pytest.fixture(scope="module")
def graph():
    trace = SyntheticLocks(ops_per_thread=300, nlocks=8).run(nthreads=8, seed=2).trace
    return build_event_graph(trace)


@pytest.mark.benchmark(group="dag-source-hoist")
def test_critical_events_cached_sources(benchmark, graph):
    dist = graph.longest_dist()

    def run():
        return graph.critical_events(dist=dist)

    path = benchmark(run)
    assert path


@pytest.mark.benchmark(group="dag-source-hoist")
def test_critical_events_rederived_sources(benchmark, graph):
    # Model the pre-hoist behaviour: the root-position scan happened
    # inside every call, so drop the cache before each invocation.
    dist = graph.longest_dist()

    def run():
        graph.source_pos = None
        return graph.critical_events(dist=dist)

    path = benchmark(run)
    assert path


@pytest.mark.benchmark(group="check-throughput")
def test_check_seed_throughput(benchmark):
    run = benchmark(lambda: run_seeds(count=5, start=0, shrink_failures=False))
    assert run.ok
