"""The :class:`Trace` container: events plus object/thread metadata."""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import TraceError
from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.schema import EVENT_DTYPE, event_from_row, records_from_events

__all__ = ["ObjectInfo", "Trace"]


@dataclass(frozen=True, slots=True)
class ObjectInfo:
    """Metadata for one synchronization object appearing in a trace."""

    obj: int
    kind: ObjectKind
    name: str

    @property
    def display_name(self) -> str:
        return self.name or f"{self.kind.name.lower()}#{self.obj}"


@dataclass
class Trace:
    """An immutable, time-ordered synchronization event trace.

    Parameters
    ----------
    records:
        Structured array with dtype :data:`repro.trace.schema.EVENT_DTYPE`.
        Must be sorted by ``seq``; ``seq`` order must be consistent with
        ``time`` order (equal times may interleave, which is exactly why
        ``seq`` exists).
    objects:
        Metadata for every synchronization object referenced by events.
    threads:
        Optional display names per thread id.
    meta:
        Free-form provenance (workload name, parameters, clock domain…).
    """

    records: np.ndarray
    objects: dict[int, ObjectInfo] = field(default_factory=dict)
    threads: dict[int, str] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.records.dtype != EVENT_DTYPE:
            raise TraceError(f"records have dtype {self.records.dtype}, expected EVENT_DTYPE")
        seq = self.records["seq"]
        if len(seq) > 1 and not np.all(seq[1:] > seq[:-1]):
            raise TraceError("records must be strictly ordered by seq")
        times = self.records["time"]
        if len(times) > 1 and not np.all(times[1:] >= times[:-1]):
            raise TraceError("seq order must be consistent with time order")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        events: list[Event],
        objects: Mapping[int, ObjectInfo] | None = None,
        threads: Mapping[int, str] | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> "Trace":
        """Build a trace from Event objects (sorts and reassigns ``seq``)."""
        ordered = sorted(events, key=lambda ev: (ev.time, ev.seq))
        renumbered = [
            Event(seq=i, time=ev.time, tid=ev.tid, etype=ev.etype, obj=ev.obj, arg=ev.arg)
            for i, ev in enumerate(ordered)
        ]
        return cls(
            records=records_from_events(renumbered),
            objects=dict(objects or {}),
            threads=dict(threads or {}),
            meta=dict(meta or {}),
        )

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Event]:
        for row in self.records:
            yield event_from_row(row)

    def __getitem__(self, i: int) -> Event:
        return event_from_row(self.records[i])

    @property
    def start_time(self) -> float:
        """Timestamp of the first event (0.0 for an empty trace)."""
        return float(self.records["time"][0]) if len(self.records) else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last event (0.0 for an empty trace)."""
        return float(self.records["time"][-1]) if len(self.records) else 0.0

    @property
    def duration(self) -> float:
        """End-to-end execution time covered by the trace."""
        return self.end_time - self.start_time

    @property
    def thread_ids(self) -> list[int]:
        """Sorted ids of all threads that emitted at least one event."""
        return sorted(int(t) for t in np.unique(self.records["tid"]))

    def thread_name(self, tid: int) -> str:
        return self.threads.get(tid, f"T{tid}")

    def object_info(self, obj: int) -> ObjectInfo:
        try:
            return self.objects[obj]
        except KeyError:
            raise TraceError(f"unknown synchronization object id {obj}") from None

    def object_name(self, obj: int) -> str:
        info = self.objects.get(obj)
        return info.display_name if info is not None else f"obj#{obj}"

    def objects_of_kind(self, *kinds: ObjectKind) -> list[ObjectInfo]:
        """All objects of the given kinds, sorted by id."""
        wanted = set(kinds)
        return [info for obj, info in sorted(self.objects.items()) if info.kind in wanted]

    @property
    def locks(self) -> list[ObjectInfo]:
        """All lock-like objects (mutexes, semaphores, rwlocks)."""
        return [info for _, info in sorted(self.objects.items()) if info.kind.is_lock_like]

    # -- filtered views ----------------------------------------------------

    def for_thread(self, tid: int) -> np.ndarray:
        """Record view of one thread's events, in trace order."""
        return self.records[self.records["tid"] == tid]

    def for_object(self, obj: int) -> np.ndarray:
        """Record view of one synchronization object's events."""
        return self.records[self.records["obj"] == obj]

    def count(self, etype: EventType) -> int:
        """Number of events of one type."""
        return int(np.count_nonzero(self.records["etype"] == int(etype)))

    # -- lifetime ----------------------------------------------------------

    def thread_span(self, tid: int) -> tuple[float, float]:
        """(first event time, last event time) for a thread."""
        rows = self.for_thread(tid)
        if len(rows) == 0:
            raise TraceError(f"thread {tid} has no events")
        return float(rows["time"][0]), float(rows["time"][-1])

    def last_finished_thread(self) -> int:
        """Tid of the thread whose final event is latest (analysis entry point).

        This is where the paper's backward algorithm starts: "the last
        segment of the last finished thread".
        """
        if len(self.records) == 0:
            raise TraceError("empty trace")
        return int(self.records["tid"][-1])
