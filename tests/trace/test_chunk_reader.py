"""Incremental trace reading: iter_trace_chunks, tail-follow mode."""

import threading
import time

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.framing import encode_records_frame, encode_trailer_frame
from repro.trace.reader import iter_trace_chunks
from repro.trace.schema import EVENT_DTYPE
from repro.trace.writer import header_dict, write_trace


def _collect(path, **kw):
    batches = list(iter_trace_chunks(path, **kw))
    return np.concatenate(batches) if batches else np.empty(0, EVENT_DTYPE)


class TestBatchedRead:
    def test_clt_chunks_cover_trace(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        got = _collect(path, chunk_events=5)
        assert np.array_equal(got, micro_trace.records)

    def test_jsonl_chunks_cover_trace(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.jsonl")
        got = _collect(path, chunk_events=5)
        assert np.array_equal(got, micro_trace.records)

    def test_cls_chunks_cover_trace(self, micro_trace, tmp_path):
        path = tmp_path / "t.cls"
        with open(path, "wb") as fh:
            fh.write(encode_records_frame(micro_trace.records[:10], 0))
            fh.write(encode_records_frame(micro_trace.records[10:], 1))
            fh.write(encode_trailer_frame(header_dict(micro_trace), 2))
        got = _collect(path)
        assert np.array_equal(got, micro_trace.records)

    def test_chunk_sizes_respected(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        batches = list(iter_trace_chunks(path, chunk_events=5))
        assert all(len(b) <= 5 for b in batches)
        assert sum(len(b) for b in batches) == len(micro_trace)

    def test_partial_trailing_record_rejected(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            _collect(path)


class TestFollow:
    def test_follow_sees_appended_records(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "grow.clt")
        half = len(micro_trace.records) // 2
        blob = path.read_bytes()
        cut = len(blob) - (len(micro_trace.records) - half) * EVENT_DTYPE.itemsize
        path.write_bytes(blob[:cut])

        def grow():
            time.sleep(0.1)
            with open(path, "ab") as fh:
                fh.write(blob[cut:])

        t = threading.Thread(target=grow)
        t.start()
        got = _collect(
            path, chunk_events=8, follow=True, poll_interval=0.02, timeout=1.0
        )
        t.join()
        assert np.array_equal(got, micro_trace.records)

    def test_follow_cls_stops_at_trailer(self, micro_trace, tmp_path):
        path = tmp_path / "grow.cls"
        with open(path, "wb") as fh:
            fh.write(encode_records_frame(micro_trace.records[:10], 0))

        def finish():
            time.sleep(0.1)
            with open(path, "ab") as fh:
                fh.write(encode_records_frame(micro_trace.records[10:], 1))
                fh.write(encode_trailer_frame(header_dict(micro_trace), 2))

        t = threading.Thread(target=finish)
        t.start()
        # No timeout needed: the trailer ends the iteration.
        got = _collect(path, follow=True, poll_interval=0.02, timeout=5.0)
        t.join()
        assert np.array_equal(got, micro_trace.records)

    def test_follow_idle_timeout_ends_iteration(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        start = time.monotonic()
        got = _collect(path, follow=True, poll_interval=0.02, timeout=0.15)
        assert np.array_equal(got, micro_trace.records)
        assert time.monotonic() - start < 5.0

    def test_follow_stop_callback(self, micro_trace, tmp_path):
        path = write_trace(micro_trace, tmp_path / "t.clt")
        got = _collect(
            path, follow=True, poll_interval=0.02, stop=lambda: True
        )
        assert np.array_equal(got, micro_trace.records)

    def test_follow_jsonl_growing(self, micro_trace, tmp_path):
        src = write_trace(micro_trace, tmp_path / "full.jsonl")
        lines = src.read_text().splitlines(keepends=True)
        path = tmp_path / "grow.jsonl"
        path.write_text("".join(lines[:8]))

        def grow():
            time.sleep(0.1)
            with open(path, "a") as fh:
                fh.write("".join(lines[8:]))

        t = threading.Thread(target=grow)
        t.start()
        got = _collect(
            path, chunk_events=4, follow=True, poll_interval=0.02, timeout=1.0
        )
        t.join()
        assert np.array_equal(got, micro_trace.records)
