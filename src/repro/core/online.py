"""Online (streaming) lock statistics and the incremental estimator.

The paper's future work (§VII) wants critical-lock information *at run
time* to steer mechanisms like accelerated critical sections.  A full
critical-path walk needs the whole trace; this module maintains what CAN
be known online, one event at a time, in O(locks) memory:

* exact TYPE 2 statistics (waits, holds, invocations, contention);
* a **criticality heuristic** per lock — the length of the current
  longest chain of *dependent* critical sections (each contended handoff
  extends the previous holder's chain), which approximates the lock's
  accumulated presence on the eventual critical path without storing
  events.

On the micro-benchmark the heuristic ranks L2 over L1 — matching the
offline analysis where the idle-time metric gets it wrong — and the
exactness of the TYPE 2 counters is tested against the offline metrics.

For streaming ingestion (:mod:`repro.stream`, the service's
chunked-append path) the analyzer also acts as an **incremental
estimator**: :meth:`~OnlineAnalyzer.observe_batch` consumes numpy record
batches as they arrive, :meth:`~OnlineAnalyzer.snapshot` emits a rolling
JSON view (ranking, contention probabilities, a CP-time estimate), and
:meth:`~OnlineAnalyzer.reconcile` scores the final estimate against the
exact batch analyzer's report once the stream is finalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.tables import format_table
from repro.trace.events import Event, EventType
from repro.trace.trace import Trace
from repro.units import format_duration, format_percent

__all__ = ["OnlineLockStats", "OnlineAnalyzer"]

#: Integer values of the lock-verb event types (batch fast-path filter).
_LOCK_VERBS = (
    int(EventType.ACQUIRE), int(EventType.OBTAIN), int(EventType.RELEASE)
)


@dataclass
class OnlineLockStats:
    """Streaming counters for one lock."""

    obj: int
    name: str
    invocations: int = 0
    contended: int = 0
    wait_time: float = 0.0
    hold_time: float = 0.0
    # Criticality heuristic: longest observed dependent-hold chain.
    chain_time: float = 0.0  # accumulated serialized hold time, running
    max_chain_time: float = 0.0
    # internal
    _pending_acquire: dict[int, float] = field(default_factory=dict)
    _obtain_time: dict[int, float] = field(default_factory=dict)
    _last_release: float = -1.0

    @property
    def cont_prob(self) -> float:
        return self.contended / self.invocations if self.invocations else 0.0


class OnlineAnalyzer:
    """Feed events as they happen; read lock rankings at any moment."""

    def __init__(self, trace_like: Trace | None = None):
        self._locks: dict[int, OnlineLockStats] = {}
        self._names: dict[int, str] = {}
        self.events_seen = 0
        self.first_time: float | None = None
        self.last_time: float | None = None
        if trace_like is not None:
            for info in trace_like.locks:
                self._names[info.obj] = info.display_name

    def observe(self, ev: Event) -> None:
        """Consume one event (must arrive in time order per thread)."""
        self.events_seen += 1
        if self.first_time is None or ev.time < self.first_time:
            self.first_time = ev.time
        if self.last_time is None or ev.time > self.last_time:
            self.last_time = ev.time
        if ev.etype not in (EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE):
            return
        ls = self._locks.get(ev.obj)
        if ls is None:
            ls = OnlineLockStats(
                obj=ev.obj, name=self._names.get(ev.obj, f"obj#{ev.obj}")
            )
            self._locks[ev.obj] = ls
        if ev.etype == EventType.ACQUIRE:
            ls._pending_acquire[ev.tid] = ev.time
        elif ev.etype == EventType.OBTAIN:
            ls.invocations += 1
            acq = ls._pending_acquire.pop(ev.tid, ev.time)
            ls._obtain_time[ev.tid] = ev.time
            if ev.arg:
                ls.contended += 1
                ls.wait_time += ev.time - acq
                # Dependent handoff: this hold extends the running chain.
            else:
                # Independent acquisition: the lock was free, so nobody
                # was waiting and the chain breaks.  ``>=`` matters: in
                # virtual time an uncontended OBTAIN routinely lands at
                # the exact timestamp of the previous RELEASE, and such a
                # handoff is still not a dependency.
                if ev.time >= ls._last_release:
                    ls.chain_time = 0.0
        else:  # RELEASE
            start = ls._obtain_time.pop(ev.tid, ev.time)
            hold = ev.time - start
            ls.hold_time += hold
            ls.chain_time += hold
            ls.max_chain_time = max(ls.max_chain_time, ls.chain_time)
            ls._last_release = ev.time

    def observe_all(self, trace: Trace) -> "OnlineAnalyzer":
        """Convenience: stream an entire trace through the analyzer."""
        for info in trace.locks:
            self._names[info.obj] = info.display_name
        for ev in trace:
            self.observe(ev)
        return self

    def observe_batch(self, records: np.ndarray) -> "OnlineAnalyzer":
        """Consume one numpy record batch (the streaming ingest path).

        The whole batch stays columnar: time bounds and the event count
        come from array reductions, and the lock-verb rows run through
        the per-lock batch kernel
        (:func:`repro.core.columnar.online.consume_lock_batch`) grouped
        by lock — no per-event ``Event`` objects are built.
        """
        from repro.core.columnar.online import consume_lock_batch

        if len(records) == 0:
            return self
        self.events_seen += len(records)
        times = records["time"]
        lo = float(times.min())
        hi = float(times.max())
        if self.first_time is None or lo < self.first_time:
            self.first_time = lo
        if self.last_time is None or hi > self.last_time:
            self.last_time = hi
        lock_rows = records[np.isin(records["etype"], _LOCK_VERBS)]
        if len(lock_rows) == 0:
            return self
        obj = lock_rows["obj"].astype(np.int64)
        order = np.argsort(obj, kind="stable")  # keeps batch order per lock
        sorted_obj = obj[order]
        starts = np.flatnonzero(np.diff(sorted_obj, prepend=sorted_obj[0] - 1))
        bounds = np.append(starts, len(sorted_obj))
        for lo_i, hi_i in zip(bounds[:-1], bounds[1:]):
            o = int(sorted_obj[lo_i])
            ls = self._locks.get(o)
            if ls is None:
                ls = OnlineLockStats(obj=o, name=self._names.get(o, f"obj#{o}"))
                self._locks[o] = ls
            rows = lock_rows[order[lo_i:hi_i]]
            consume_lock_batch(
                ls, rows["etype"], rows["tid"], rows["time"], rows["arg"]
            )
        return self

    def register_names(self, objects: dict[Any, Any]) -> None:
        """Adopt display names from a trace header's object table.

        ``objects`` is the JSON-header shape (``{id: {kind, name}}``,
        string or int keys); already-seen anonymous locks are renamed in
        place so late headers still fix up early chunks.
        """
        for obj, entry in objects.items():
            obj = int(obj)
            name = str(entry.get("name", "") or "") if isinstance(entry, dict) else str(entry)
            if not name:
                continue
            self._names[obj] = name
            ls = self._locks.get(obj)
            if ls is not None:
                ls.name = name

    # -- queries -------------------------------------------------------------

    def stats(self, obj: int) -> OnlineLockStats:
        return self._locks[obj]

    def ranking(self) -> list[OnlineLockStats]:
        """Locks by the criticality heuristic (longest dependent chain)."""
        return sorted(
            self._locks.values(), key=lambda ls: ls.max_chain_time, reverse=True
        )

    def ranking_by_wait(self) -> list[OnlineLockStats]:
        """The classical online ranking (what a TYPE 2 tool maintains)."""
        return sorted(
            self._locks.values(), key=lambda ls: ls.wait_time, reverse=True
        )

    def render(self, n: int = 8) -> str:
        rows = [
            [
                ls.name,
                format_duration(ls.max_chain_time),
                format_duration(ls.wait_time),
                ls.invocations,
                format_percent(ls.cont_prob),
                format_duration(ls.hold_time),
            ]
            for ls in self.ranking()[:n]
        ]
        return format_table(
            ["Lock", "Max dependent chain", "Total wait", "Invocations",
             "Cont. prob", "Total hold"],
            rows,
            title="Online lock statistics (streaming)",
        )

    # -- incremental estimator ------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Time span covered by the events observed so far."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    def snapshot(self, top: int | None = None) -> dict[str, Any]:
        """Rolling JSON view of the stream: ranking, cont-prob, CP estimate.

        The per-lock ``est_cp_frac`` is the criticality heuristic scaled
        by elapsed time — the longest dependent-hold chain is a lower
        bound on the serialized time the lock will contribute to the
        eventual critical path, so ``max_chain_time / elapsed``
        approximates the exact analyzer's ``cp_time_frac`` without a
        backward walk.  ``cp_time_estimate`` is the span itself: the
        critical path of a complete trace is exactly its duration; mid-
        stream it is the best running lower bound.
        """
        elapsed = self.elapsed
        locks = [
            {
                "obj": ls.obj,
                "name": ls.name,
                "invocations": ls.invocations,
                "contended": ls.contended,
                "cont_prob": ls.cont_prob,
                "wait_time": ls.wait_time,
                "hold_time": ls.hold_time,
                "max_chain_time": ls.max_chain_time,
                "est_cp_frac": (
                    min(1.0, ls.max_chain_time / elapsed) if elapsed > 0 else 0.0
                ),
            }
            for ls in self.ranking()[:top]
        ]
        return {
            "events": self.events_seen,
            "elapsed": elapsed,
            "cp_time_estimate": elapsed,
            "nlocks": len(self._locks),
            "locks": locks,
        }

    def reconcile(self, report: dict[str, Any]) -> dict[str, Any]:
        """Score the final estimate against the exact batch analyzer.

        ``report`` is an :meth:`AnalysisReport.to_dict` payload (as the
        service's ``analyze`` job returns).  Exact-by-construction
        counters (invocations, contention probability) must match;
        the heuristic ``est_cp_frac`` is reported with its absolute
        error per lock, plus whether the two rankings agree on the top
        lock — the question the paper's tool exists to answer.
        """
        exact_locks: dict[str, dict[str, Any]] = report.get("locks", {})
        duration = float(report.get("duration", 0.0))
        per_lock: dict[str, dict[str, Any]] = {}
        counters_exact = True
        for ls in self._locks.values():
            exact = exact_locks.get(ls.name)
            if exact is None:
                counters_exact = False
                per_lock[ls.name] = {"missing_from_exact": True}
                continue
            est = min(1.0, ls.max_chain_time / duration) if duration > 0 else 0.0
            inv_ok = ls.invocations == int(exact.get("total_invocations", -1))
            cp_ok = abs(ls.cont_prob - float(exact.get("avg_cont_prob", -1.0))) < 1e-9
            counters_exact = counters_exact and inv_ok and cp_ok
            per_lock[ls.name] = {
                "est_cp_frac": est,
                "exact_cp_frac": float(exact.get("cp_time_frac", 0.0)),
                "cp_frac_error": abs(est - float(exact.get("cp_time_frac", 0.0))),
                "cont_prob": ls.cont_prob,
                "invocations_match": inv_ok,
                "cont_prob_match": cp_ok,
            }
        ranking_online = [ls.name for ls in self.ranking()]
        ranking_exact = [
            name
            for name, m in sorted(
                exact_locks.items(),
                key=lambda kv: kv[1].get("cp_time_frac", 0.0),
                reverse=True,
            )
        ]
        return {
            "cp_time_estimate": self.elapsed,
            "exact_cp_time": duration,
            "cp_time_error": abs(self.elapsed - duration),
            "counters_exact": counters_exact,
            "locks": per_lock,
            "ranking_online": ranking_online,
            "ranking_exact": ranking_exact,
            "top_lock_agrees": (
                bool(ranking_online)
                and bool(ranking_exact)
                and ranking_online[0] == ranking_exact[0]
            ),
        }
