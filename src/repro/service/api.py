"""Transport-independent API core: routing, schemas, and orchestration.

:class:`ServiceAPI` owns every service component (store, cache, job
store, pool, metrics) and maps ``(method, path, body)`` requests onto
them, returning ``(status, payload)`` pairs.  The HTTP layer in
:mod:`repro.service.server` is a thin bridge over :meth:`handle`; tests
can drive the full service in-process through the same method without a
socket in sight.

Endpoints::

    POST /traces            raw trace bytes (.clt or .jsonl)  -> 201 {digest,...}
    GET  /traces            -> {traces: [...]}
    GET  /traces/<digest>   -> stored-trace metadata
    POST /jobs              {"kind","trace"|"traces","params"} -> 202 {id,state,...}
    GET  /jobs              -> {jobs: [...]}
    GET  /jobs/<id>         -> job status (no result payload)
    GET  /reports/<id>      -> finished job's result (409 while pending)
    GET  /metrics           -> queue/cache/latency self-observation
    GET  /healthz           -> {ok: true}

Streaming ingestion (chunked append, :mod:`repro.service.stream`)::

    POST /streams                     {"name","meta","max_pending"} -> 201 session
    GET  /streams                     -> {streams: [...]}
    GET  /streams/<id>                -> session status
    GET  /streams/<id>/snapshot       -> incremental estimator snapshot
    POST /traces/<session>/chunks     framed record blocks -> 202 ack
                                       (409 gap, 429 backpressure)
    POST /traces/<session>/finalize   {"header","analyze","name","params"}
                                       -> 200 stored trace (+report/reconciliation)

Fleet observability (:mod:`repro.fleet`; every store write feeds the
aggregator incrementally, and ``/dashboard`` + ``/fleet/events`` are
served by the HTTP layer on top of these)::

    GET  /fleet/summary      ?top=N          -> cluster summary
    GET  /fleet/regressions  ?topk=&noise_floor=&sigma= -> ranking shifts
    GET  /fleet/alerts                       -> alert rules evaluated now

Multi-node (consistent-hash routing, :mod:`repro.service.ring`)::

    GET  /ring               -> {routing, self, nodes, replicas}
    POST /jobs               -> 307 {redirect, node} when another ring
                                node owns the job's cache key

Storage is pluggable (:mod:`repro.service.backend`): ``backend=`` (an
instance or a ``serve --backend`` spec string) routes the trace store
and result cache through shared object storage; the default keeps the
original private local-disk layout.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ServiceError
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.dashboard import render_dashboard
from repro.fleet.ingest import FleetIngestor, ingest_store
from repro.fleet.rules import evaluate_rules, load_rules
from repro.service.backend import StorageBackend, make_backend
from repro.service.cache import ResultCache
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, JobSpec, JobStore, execute
from repro.service.metrics import ServiceMetrics
from repro.service.pool import DEFAULT_START_METHOD, WorkerPool
from repro.service.ring import HashRing
from repro.service.store import TraceStore
from repro.service.stream import StreamStore

__all__ = ["ServiceAPI"]


class ServiceAPI:
    """The analysis service, sans transport."""

    def __init__(
        self,
        data_dir: str | Path,
        workers: int = 2,
        cache_capacity: int = 256,
        start_method: str = DEFAULT_START_METHOD,
        max_pending_chunks: int = 64,
        rules_path: str | Path | None = None,
        backend: StorageBackend | str | None = None,
        object_root: str | Path | None = None,
        self_url: str | None = None,
        peers: Sequence[str] = (),
    ):
        self.data_dir = Path(data_dir)
        if isinstance(backend, str):
            backend = make_backend(backend, self.data_dir, object_root=object_root)
        self.backend = backend
        self.store = TraceStore(
            self.data_dir / "traces",
            backend=backend.scoped("traces") if backend is not None else None,
        )
        cache_backend = backend.scoped("cache") if backend is not None else None
        self.cache = ResultCache(
            capacity=cache_capacity,
            disk_dir=None if cache_backend is not None else self.data_dir / "cache",
            backend=cache_backend,
        )
        self.self_url = (self_url or "").rstrip("/") or None
        peers = [p.rstrip("/") for p in peers if p]
        if peers:
            if self.self_url is None:
                raise ServiceError(
                    "ring routing needs self_url when peers are configured"
                )
            self.ring: HashRing | None = HashRing([self.self_url, *peers])
        else:
            self.ring = None
        self.streams = StreamStore(
            self.data_dir / "streams", max_pending_chunks=max_pending_chunks
        )
        self.jobs = JobStore()
        self.metrics = ServiceMetrics()
        self.fleet = FleetAggregator(self.data_dir / "fleet")
        self.fleet_rules = load_rules(rules_path) if rules_path else []
        self.fleet_ingestor = FleetIngestor(self.fleet, metrics=self.metrics)
        self._cache_keys: dict[str, str] = {}  # job id -> cache key
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self.pool = WorkerPool(
            workers=workers, on_event=self._on_pool_event, start_method=start_method
        )

    def close(self) -> None:
        self.fleet_ingestor.close()
        self.streams.close()
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- request dispatch -----------------------------------------------------

    def handle(
        self, method: str, path: str, body: bytes = b"", query: dict | None = None
    ) -> tuple[int, dict[str, Any]]:
        """Route one request; never raises for client-visible errors."""
        self.metrics.count_request()
        query = query or {}
        parts = [p for p in path.split("/") if p]
        try:
            return self._route(method.upper(), parts, body, query)
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}

    def _route(
        self, method: str, parts: list[str], body: bytes, query: dict
    ) -> tuple[int, dict[str, Any]]:
        import json

        match (method, parts):
            case ("POST", ["traces"]):
                entry = self.store.put_bytes(body, name=query.get("name"))
                self.fleet_ingestor.enqueue(entry)
                return 201, entry.to_dict()
            case ("GET", ["traces"]):
                return 200, {"traces": [e.to_dict() for e in self.store.list()]}
            case ("GET", ["traces", digest]):
                return 200, self.store.get(digest).to_dict()
            case ("POST", ["streams"]):
                try:
                    req = json.loads(body or b"{}")
                except json.JSONDecodeError as exc:
                    raise ServiceError(f"request body is not JSON: {exc}") from exc
                session = self.streams.open(
                    name=str(req.get("name", "")),
                    meta=req.get("meta") or {},
                    max_pending=req.get("max_pending"),
                )
                self.metrics.count_stream_opened()
                return 201, session.to_dict()
            case ("GET", ["streams"]):
                return 200, {"streams": [s.to_dict() for s in self.streams.list()]}
            case ("GET", ["streams", sid]):
                return 200, self.streams.get(sid).to_dict()
            case ("GET", ["streams", sid, "snapshot"]):
                top = query.get("top")
                snap = self.streams.snapshot(
                    sid, top=int(top) if top is not None else None
                )
                if query.get("render"):
                    snap["rendered"] = self.streams.render_snapshot(sid)
                return 200, snap
            case ("POST", ["traces", sid, "chunks"]):
                return self._append_chunks(sid, body)
            case ("POST", ["traces", sid, "finalize"]):
                try:
                    req = json.loads(body or b"{}")
                except json.JSONDecodeError as exc:
                    raise ServiceError(f"request body is not JSON: {exc}") from exc
                return 200, self.finalize_stream(sid, req)
            case ("POST", ["jobs"]):
                try:
                    req = json.loads(body or b"{}")
                except json.JSONDecodeError as exc:
                    raise ServiceError(f"request body is not JSON: {exc}") from exc
                out = self.submit_job(req)
                if "redirect" in out:
                    return 307, out
                return 202, out
            case ("GET", ["jobs"]):
                return 200, {"jobs": [j.to_dict() for j in self.jobs.list()]}
            case ("GET", ["jobs", job_id]):
                return 200, self.jobs.get(job_id).to_dict()
            case ("GET", ["reports", job_id]):
                return self._get_report(job_id)
            case ("GET", ["fleet", "summary"]):
                top = query.get("top")
                return 200, self.fleet.summary(
                    top=int(top) if top is not None else 20
                )
            case ("GET", ["fleet", "regressions"]):
                kwargs: dict[str, Any] = {}
                if query.get("topk") is not None:
                    kwargs["topk"] = int(query["topk"])
                if query.get("noise_floor") is not None:
                    kwargs["noise_floor"] = float(query["noise_floor"])
                if query.get("sigma") is not None:
                    kwargs["sigma"] = float(query["sigma"])
                return 200, self.fleet.regressions(**kwargs)
            case ("GET", ["fleet", "alerts"]):
                return 200, {
                    "rules": len(self.fleet_rules),
                    "alerts": evaluate_rules(self.fleet_rules, self.fleet),
                }
            case ("POST", ["fleet", "ingest"]):
                # Catch-up over traces stored before fleet observability
                # (or under a different service instance).
                return 200, ingest_store(
                    self.fleet, self.store, metrics=self.metrics
                )
            case ("GET", ["ring"]):
                if self.ring is None:
                    return 200, {"routing": False, "self": self.self_url}
                return 200, {
                    "routing": True,
                    "self": self.self_url,
                    **self.ring.to_dict(),
                }
            case ("GET", ["metrics"]):
                return 200, self.snapshot_metrics()
            case ("GET", ["healthz"]):
                return 200, {"ok": True, "workers": self.pool.workers}
            case _:
                raise ServiceError(
                    f"no route for {method} /{'/'.join(parts)}", status=404
                )

    # -- streaming ingestion ---------------------------------------------------

    def _append_chunks(self, sid: str, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            ack = self.streams.append_chunks(sid, body)
        except ServiceError as exc:
            if exc.status == 429:
                self.metrics.count_stream_backpressure()
            elif exc.status == 409 and "gap" in str(exc):
                self.metrics.count_stream_gap()
            raise
        self.metrics.count_stream_chunks(
            accepted=ack["accepted"],
            duplicates=ack["duplicates"],
            events=ack["accepted_events"],
            nbytes=len(body),
        )
        return 202, ack

    def finalize_stream(self, sid: str, req: dict[str, Any]) -> dict[str, Any]:
        """Drain a stream, store the assembled trace, optionally analyze.

        The stored trace is content-addressed through the same
        :class:`TraceStore` as whole-file uploads, so a trace streamed
        chunk-by-chunk and the identical trace uploaded in one POST get
        the same digest and hit the same result cache.  With
        ``analyze: true`` the exact batch analysis runs inline and the
        incremental estimator's final snapshot is reconciled against it.
        """
        if not isinstance(req, dict):
            raise ServiceError("finalize body must be a JSON object")
        header = req.get("header") or {}
        if not isinstance(header, dict):
            raise ServiceError("'header' must be an object")
        params = req.get("params", {})
        if not isinstance(params, dict):
            raise ServiceError("'params' must be an object")
        session, trace = self.streams.finalize(
            sid, header=header, timeout=req.get("timeout")
        )
        with session.alock:
            session.analyzer.register_names(header.get("objects", {}))
            snapshot = session.analyzer.snapshot()
        entry = self.store.put_trace(
            trace, name=req.get("name") or session.name or None
        )
        session.digest = entry.digest
        self.fleet_ingestor.enqueue(entry)
        self.metrics.count_stream_finalized()
        out: dict[str, Any] = {
            "trace": entry.to_dict(),
            "stream": session.to_dict(),
            "snapshot": snapshot,
        }
        if req.get("analyze"):
            result = execute("analyze", [str(entry.path)], params)
            out["report"] = result
            with session.alock:
                out["reconciliation"] = session.analyzer.reconcile(result)
        return out

    # -- job orchestration ----------------------------------------------------

    def submit_job(self, req: dict[str, Any]) -> dict[str, Any]:
        """Create a job from a request dict; may finish instantly on cache hit."""
        if not isinstance(req, dict):
            raise ServiceError("job request must be a JSON object")
        kind = req.get("kind")
        if not isinstance(kind, str):
            raise ServiceError("job request needs a string 'kind'")
        digests = req.get("traces", [])
        if "trace" in req:
            digests = [req["trace"], *digests]
        if not isinstance(digests, (list, tuple)):
            raise ServiceError("'traces' must be a list of digests")
        params = req.get("params", {})
        if not isinstance(params, dict):
            raise ServiceError("'params' must be an object")

        # Fleet kinds answer from mutable persisted state: resolve the
        # state dir for the worker and never cache the result.
        fleet_kind = kind in ("fleet_summary", "fleet_regressions")
        if fleet_kind:
            params = {**params}
            params.setdefault("state_dir", str(self.data_dir / "fleet"))

        spec = JobSpec(kind=kind, digests=tuple(digests), params=params)

        # Consistent-hash routing: every cacheable job has one owning
        # node; everyone else answers with a redirect the client follows.
        # (Fleet kinds read node-local persisted state and selftest is a
        # diagnostics probe of *this* node — both always run locally.)
        if self.ring is not None and not fleet_kind and kind != "selftest":
            owner = self.ring.owner(spec.cache_key())
            if owner != self.self_url:
                self.metrics.count_redirected(kind)
                return {
                    "redirect": f"{owner}/jobs",
                    "node": owner,
                    "kind": kind,
                    "key": spec.cache_key(),
                }

        paths = self.store.resolve(spec.digests)  # 404s before queuing
        job = self.jobs.create(spec)
        self.metrics.count_submitted(kind)

        if not fleet_kind:
            key = spec.cache_key()
            cached = self.cache.get(key)
            if cached is not None:
                self.jobs.mark_done(job.id, cached, cached=True)
                self.metrics.count_cached(kind)
                with self._done:
                    self._done.notify_all()
                return self.jobs.get(job.id).to_dict()
            with self._lock:
                self._cache_keys[job.id] = key
        self.pool.submit(job.id, spec.kind, paths, spec.params)
        return self.jobs.get(job.id).to_dict()

    def wait(self, job_id: str, timeout: float = 60.0) -> dict[str, Any]:
        """Block until a job finishes (in-process convenience; HTTP polls)."""
        import time

        deadline = time.monotonic() + timeout
        with self._done:
            while True:
                job = self.jobs.get(job_id)
                if job.state in (DONE, FAILED):
                    return job.to_dict(include_result=True)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"timed out waiting for job {job_id}", status=504
                    )
                self._done.wait(timeout=remaining)

    def _get_report(self, job_id: str) -> tuple[int, dict[str, Any]]:
        job = self.jobs.get(job_id)
        if job.state == FAILED:
            return 500, {"id": job.id, "state": job.state, "error": job.error}
        if job.state != DONE:
            return 409, {
                "id": job.id,
                "state": job.state,
                "error": "job not finished; poll GET /jobs/<id>",
            }
        return 200, {"id": job.id, "kind": job.spec.kind, "cached": job.cached,
                     "result": job.result}

    # -- fleet observability ---------------------------------------------------

    def flush_fleet(self, timeout: float = 30.0) -> bool:
        """Wait for pending fleet ingestion (tests, graceful drains)."""
        return self.fleet_ingestor.flush(timeout=timeout)

    def fleet_alerts(self) -> list[dict[str, Any]]:
        return evaluate_rules(self.fleet_rules, self.fleet)

    def dashboard_html(self) -> str:
        """The live dashboard page (served as GET /dashboard)."""
        return render_dashboard(
            self.fleet.summary(),
            self.fleet.regressions(),
            self.fleet_alerts(),
            nrules=len(self.fleet_rules),
        )

    def fleet_event_payload(self) -> dict[str, Any]:
        """One SSE event: compact state for dashboard live updates."""
        summary = self.fleet.summary(top=10)
        regressions = self.fleet.regressions()
        return {
            "type": "fleet",
            "version": summary["version"],
            "summary": {
                "traces": summary["traces"],
                "workloads": summary["workloads"],
                "clusters": summary["clusters"],
                "top": [
                    {
                        "workload": c["workload"],
                        "site": c["site"],
                        "cp_latest": c["cp_latest"],
                    }
                    for c in summary["top"][:5]
                ],
            },
            "regressions": len(regressions["flags"]),
            "alerts": len(self.fleet_alerts()),
        }

    def snapshot_metrics(self) -> dict[str, Any]:
        out = self.metrics.to_dict()
        out["queue"] = {
            "queued": self.jobs.count(QUEUED),
            "running": self.jobs.count(RUNNING),
            "pending": self.pool.pending,
            "workers": self.pool.workers,
            "worker_restarts": self.pool.restarts,
        }
        out["cache"] = self.cache.stats()
        out["traces"] = self.store.stats()
        out["storage"] = {
            "backend": self.backend.name if self.backend is not None else "local"
        }
        out["ring"] = (
            {"routing": True, "self": self.self_url, "nodes": len(self.ring)}
            if self.ring is not None
            else {"routing": False}
        )
        out["streams"].update(self.streams.stats())
        out["fleet"].update(self.fleet.stats())
        return out

    # -- pool event sink (collector thread) ------------------------------------

    def _on_pool_event(self, event: str, job_id: str, payload: Any) -> None:
        if event == "start":
            self.jobs.mark_running(job_id)
            return
        if event == "done":
            job = self.jobs.mark_done(job_id, payload)
            if job is not None:
                with self._lock:
                    key = self._cache_keys.pop(job_id, None)
                if key is not None:
                    self.cache.put(key, payload)
                if job.latency is not None:
                    self.metrics.count_completed(job.spec.kind, job.latency)
        else:  # error / crashed
            job = self.jobs.mark_failed(job_id, str(payload))
            if job is not None:
                self.metrics.count_failed(job.spec.kind)
            with self._lock:
                self._cache_keys.pop(job_id, None)
        with self._done:
            self._done.notify_all()
