"""Eyerman & Eeckhout's analytical critical-section model (paper ref [10]).

The paper's §III.B builds its two metrics on Eyerman & Eeckhout,
"Modeling Critical Sections in Amdahl's Law and its Implications for
Multicore Design" (ISCA 2010): the achievable speedup of a multithreaded
program is limited not just by its sequential fraction but by the
*contention probability* and *size* of its critical sections.  Their key
result: with a fraction ``f_crit`` of work inside critical sections and a
contention probability ``p_ctn``, the contended part
``f_crit * p_ctn`` serializes while everything else scales, giving

    T(N) = (1 - f_crit) / N  +  f_crit * (1 - p_ctn) / N  +  f_crit * p_ctn
    speedup(N) = T(1) / T(N) = 1 / ((1 - f_crit * p_ctn) / N + f_crit * p_ctn)

i.e. an Amdahl law whose "sequential fraction" is the contended critical-
section fraction.  The paper's criticism (and the reason this module
exists) is that [10] treats **all** critical sections as equally critical;
critical lock analysis replaces the aggregate ``f_crit * p_ctn`` with
per-lock, on-critical-path measurements.

This module implements the model, fits its parameters from a trace, and
— as an ablation — lets benchmarks compare the model's speedup ceiling
against the simulator's measured scaling and against critical-lock-
analysis-based predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisResult
from repro.errors import AnalysisError

__all__ = ["CriticalSectionModel", "eyerman_speedup", "fit_model"]


def eyerman_speedup(f_crit: float, p_ctn: float, n: int, f_seq: float = 0.0) -> float:
    """Predicted speedup at ``n`` threads under the [10] model.

    Parameters
    ----------
    f_crit:
        Fraction of single-thread execution time spent inside critical
        sections.
    p_ctn:
        Probability that a critical-section entry contends.
    n:
        Thread count.
    f_seq:
        Classic Amdahl sequential fraction outside critical sections.
    """
    if not 0 <= f_crit <= 1:
        raise AnalysisError(f"f_crit must be in [0, 1], got {f_crit}")
    if not 0 <= p_ctn <= 1:
        raise AnalysisError(f"p_ctn must be in [0, 1], got {p_ctn}")
    if not 0 <= f_seq <= 1 - f_crit:
        raise AnalysisError(f"f_seq must be in [0, {1 - f_crit}], got {f_seq}")
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    serialized = f_seq + f_crit * p_ctn
    parallel = 1.0 - serialized
    return 1.0 / (parallel / n + serialized)


@dataclass(frozen=True)
class CriticalSectionModel:
    """Fitted parameters of the [10] model for one traced execution."""

    f_crit: float  # critical-section fraction of total thread time
    p_ctn: float  # aggregate contention probability
    nthreads: int  # thread count of the profiled run

    def speedup(self, n: int) -> float:
        """Model-predicted speedup over 1 thread at ``n`` threads."""
        return eyerman_speedup(self.f_crit, self.p_ctn, n)

    def speedup_ceiling(self) -> float:
        """Asymptotic speedup as ``n`` grows without bound."""
        serialized = self.f_crit * self.p_ctn
        if serialized <= 0:
            return float("inf")
        return 1.0 / serialized

    def __str__(self) -> str:
        ceiling = self.speedup_ceiling()
        ceiling_s = "unbounded" if ceiling == float("inf") else f"{ceiling:.1f}x"
        return (
            f"Eyerman-Eeckhout model: f_crit={self.f_crit:.3f}, "
            f"p_ctn={self.p_ctn:.3f} -> speedup ceiling {ceiling_s}"
        )


def fit_model(analysis: AnalysisResult) -> CriticalSectionModel:
    """Fit the [10] parameters from a critical-lock-analysis result.

    ``f_crit`` is the aggregate hold-time fraction of *execution* time
    (thread lifetimes minus blocked time — the model's parameters
    describe work, and blocking would dilute the fraction under
    contention); ``p_ctn`` is the aggregate contended fraction of lock
    acquisitions, which grows with the thread count of the profiled run.
    """
    total_lifetime = sum(
        tl.lifetime - tl.total_wait for tl in analysis.timelines.values()
    )
    if total_lifetime <= 0:
        raise AnalysisError("cannot fit model: zero total thread execution time")
    total_hold = 0.0
    total_inv = 0
    contended = 0
    for m in analysis.report.locks.values():
        total_hold += m.total_hold_time
        total_inv += m.total_invocations
        contended += m.contended_invocations
    return CriticalSectionModel(
        f_crit=min(1.0, total_hold / total_lifetime),
        p_ctn=(contended / total_inv) if total_inv else 0.0,
        nthreads=len(analysis.timelines),
    )
