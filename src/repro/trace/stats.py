"""Descriptive trace statistics (exploration aid; CLI ``stats``).

Quick facts about a trace before running the full analysis: event counts
by type, the busiest synchronization objects, per-thread event rates and
hold/wait distribution summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tables import format_table
from repro.trace.events import EventType
from repro.trace.trace import Trace
from repro.units import format_duration

__all__ = ["TraceStats", "compute_trace_stats"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    nevents: int
    nthreads: int
    nobjects: int
    duration: float
    events_by_type: dict[str, int]
    events_by_object: list[tuple[str, int]]  # busiest first
    events_per_thread: dict[int, int]
    hold_time_quantiles: tuple[float, float, float]  # p50, p90, p99

    def render(self, n_objects: int = 8) -> str:
        head = (
            f"{self.nevents} events, {self.nthreads} threads, "
            f"{self.nobjects} sync objects, duration {format_duration(self.duration)}"
        )
        type_rows = sorted(
            self.events_by_type.items(), key=lambda kv: kv[1], reverse=True
        )
        t1 = format_table(["Event type", "Count"], type_rows, title="Events by type")
        t2 = format_table(
            ["Object", "Events"],
            self.events_by_object[:n_objects],
            title="Busiest synchronization objects",
        )
        p50, p90, p99 = self.hold_time_quantiles
        holds = (
            "critical section sizes: "
            f"p50 {format_duration(p50)}, p90 {format_duration(p90)}, "
            f"p99 {format_duration(p99)}"
        )
        return "\n\n".join([head, t1, t2, holds])


def compute_trace_stats(trace: Trace) -> TraceStats:
    """Single-pass descriptive statistics over a trace."""
    records = trace.records
    etypes = records["etype"]
    by_type: dict[str, int] = {}
    for et in EventType:
        count = int(np.count_nonzero(etypes == int(et)))
        if count:
            by_type[et.name] = count

    by_object: dict[int, int] = {}
    objs = records["obj"]
    for obj in np.unique(objs):
        if obj < 0:
            continue
        by_object[int(obj)] = int(np.count_nonzero(objs == obj))
    busiest = sorted(
        ((trace.object_name(o), c) for o, c in by_object.items()),
        key=lambda t: t[1],
        reverse=True,
    )

    per_thread = {
        tid: int(np.count_nonzero(records["tid"] == tid)) for tid in trace.thread_ids
    }

    # Hold durations: OBTAIN..RELEASE pairs per (obj, tid), LIFO.
    open_holds: dict[tuple[int, int], list[float]] = {}
    durations: list[float] = []
    for ev in trace:
        if ev.etype == EventType.OBTAIN:
            open_holds.setdefault((ev.obj, ev.tid), []).append(ev.time)
        elif ev.etype == EventType.RELEASE:
            stack = open_holds.get((ev.obj, ev.tid))
            if stack:
                durations.append(ev.time - stack.pop())
    if durations:
        q = np.quantile(durations, [0.5, 0.9, 0.99])
        quantiles = (float(q[0]), float(q[1]), float(q[2]))
    else:
        quantiles = (0.0, 0.0, 0.0)

    return TraceStats(
        nevents=len(trace),
        nthreads=len(trace.thread_ids),
        nobjects=len(trace.objects),
        duration=trace.duration,
        events_by_type=by_type,
        events_by_object=busiest,
        events_per_thread=per_thread,
        hold_time_quantiles=quantiles,
    )
