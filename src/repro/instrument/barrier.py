"""Traced barrier for real threads (paper Fig. 4, ``pthread_barrier_wait``).

The arrival timestamp is recorded *before* the real wait (exactly as the
paper does), so the cohort's last arrival — the waker of every departure
— always precedes the departures in the merged trace.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING

from repro.trace.events import EventType, ObjectKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.instrument.session import ProfilingSession

__all__ = ["TracedBarrier"]

_real_barrier_factory = threading.Barrier  # bound pre-patching (see autopatch)


class TracedBarrier:
    """Drop-in ``threading.Barrier`` replacement recording barrier events."""

    __slots__ = ("session", "obj", "name", "parties", "_real", "_arrivals")

    def __init__(self, session: "ProfilingSession", parties: int, name: str = ""):
        self.session = session
        self.name = name
        self.parties = parties
        self.obj = session.register_object(ObjectKind.BARRIER, name)
        self._real = _real_barrier_factory(parties)
        self._arrivals = itertools.count()  # GIL-atomic generation counter

    def wait(self) -> int:
        """Wait at the barrier; returns the real barrier's arrival index."""
        s = self.session
        gen = next(self._arrivals) // self.parties
        s.emit_here(EventType.BARRIER_ARRIVE, obj=self.obj, arg=gen)
        idx = self._real.wait()
        s.emit_here(EventType.BARRIER_DEPART, obj=self.obj, arg=gen)
        return idx
