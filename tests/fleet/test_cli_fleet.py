"""The ``fleet`` CLI subcommand over a locally seeded service store."""

from __future__ import annotations

import json

import pytest

from tests.conftest import make_micro_program

from repro.cli import main
from repro.service import ServiceAPI
from repro.trace import write_trace

RULES = (
    "[[rule]]\n"
    "name = 'hot'\n"
    "expr = 'cp_fraction > 0.5'\n"
    "severity = 'page'\n"
)


@pytest.fixture()
def store_dir(tmp_path):
    """A service data dir with 3 baseline micro runs + 1 shifted run."""
    api = ServiceAPI(tmp_path / "svc", workers=0)
    try:
        for i in range(3):
            trace = make_micro_program(cs2=2.5 + 0.001 * i).run().trace
            path = write_trace(trace, tmp_path / f"t{i}.clt")
            api.handle("POST", "/traces", path.read_bytes(), {"name": "micro"})
        trace = make_micro_program(cs1=6.0).run().trace
        path = write_trace(trace, tmp_path / "shift.clt")
        api.handle("POST", "/traces", path.read_bytes(), {"name": "micro"})
        assert api.flush_fleet(timeout=60)
    finally:
        api.close()
    return str(tmp_path / "svc")


def test_fleet_summary(store_dir, capsys):
    assert main(["fleet", "summary", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "4 trace(s)" in out and "L1" in out and "L2" in out


def test_fleet_summary_json(store_dir, capsys):
    assert main(["fleet", "summary", "--store", store_dir, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["traces"] == 4
    assert {c["site"] for c in doc["top"]} == {"L1", "L2"}


def test_fleet_summary_empty_store(tmp_path, capsys):
    assert main(["fleet", "summary", "--store", str(tmp_path / "none")]) == 0
    assert "no observations" in capsys.readouterr().out


def test_fleet_regressions_flags_shift(store_dir, capsys):
    assert main(["fleet", "regressions", "--store", store_dir]) == 1
    out = capsys.readouterr().out
    assert "[cp_shift]" in out and "[top1_change]" in out


def test_fleet_regressions_respects_thresholds(store_dir, capsys):
    # A huge noise floor silences cp_shift flags; the genuine ranking
    # flip (top1_change) is threshold-free and still reported.
    rc = main(
        ["fleet", "regressions", "--store", store_dir,
         "--noise-floor", "0.99", "--json"]
    )
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert {f["kind"] for f in doc["flags"]} == {"top1_change"}


def test_fleet_alerts(store_dir, tmp_path, capsys):
    rules = tmp_path / "rules.toml"
    rules.write_text(RULES)
    rc = main(["fleet", "alerts", "--store", store_dir, "--rules", str(rules)])
    assert rc == 1  # the shifted run pushes L1 past the threshold
    out = capsys.readouterr().out
    assert "hot" in out and "firing" in out


def test_fleet_alerts_requires_rules(store_dir, capsys):
    assert main(["fleet", "alerts", "--store", store_dir]) == 1
    assert "needs --rules" in capsys.readouterr().err


def test_fleet_lint_rules_ok(tmp_path, capsys):
    spec = tmp_path / "rules.toml"
    spec.write_text(RULES)
    assert main(["fleet", "lint-rules", str(spec)]) == 0
    assert "OK" in capsys.readouterr().out


def test_fleet_lint_rules_rejects(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text("[[rule]]\nname = 'x'\nexpr = 'cp_fraction > 2'\n")
    assert main(["fleet", "lint-rules", str(bad)]) == 1
    assert "never exceeds" in capsys.readouterr().err


def test_fleet_state_is_cached_between_invocations(store_dir, capsys):
    # First call ingests; the second reuses persisted fleet state.
    assert main(["fleet", "summary", "--store", store_dir]) == 0
    assert main(["fleet", "summary", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert out.count("4 trace(s)") == 2
