"""TracedSemaphore: protocol, contention, autopatch interposition.

Regression tests for the autopatch gap where ``threading.Semaphore`` and
``threading.BoundedSemaphore`` created inside a patch window were left
untraced — semaphore-guarded resource pools produced traces with the
bottleneck missing entirely.
"""

import threading
import time

import pytest

from repro.instrument import ProfilingSession, TracedSemaphore, patch_threading
from repro.trace.events import EventType, ObjectKind


def test_uncontended_permit_not_flagged():
    with ProfilingSession() as s:
        sem = s.semaphore(2, "pool")
        with sem:
            pass
    trace = s.trace()
    obtain = next(ev for ev in trace if ev.etype == EventType.OBTAIN)
    assert obtain.arg == 0
    assert trace.objects[sem.obj].kind == ObjectKind.SEMAPHORE


def test_contention_when_permits_exhausted():
    with ProfilingSession() as s:
        sem = s.semaphore(1, "pool")

        def holder():
            with sem:
                time.sleep(0.05)

        def waiter():
            time.sleep(0.01)
            with sem:
                pass

        threads = [s.thread(holder), s.thread(waiter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    trace = s.trace()
    contended = [ev for ev in trace if ev.etype == EventType.OBTAIN and ev.arg == 1]
    assert len(contended) == 1


def test_value_two_admits_two_without_contention():
    with ProfilingSession() as s:
        sem = s.semaphore(2, "pool")
        barrier = threading.Barrier(2)  # real barrier, untraced on purpose

        def worker():
            with sem:
                barrier.wait(timeout=5.0)  # both inside simultaneously

        threads = [s.thread(worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    trace = s.trace()
    obtains = [ev for ev in trace if ev.etype == EventType.OBTAIN]
    assert len(obtains) == 2
    assert all(ev.arg == 0 for ev in obtains)


def test_failed_nonblocking_acquire_emits_nothing():
    with ProfilingSession() as s:
        sem = s.semaphore(1, "pool")
        assert sem.acquire(blocking=False)
        got = sem.acquire(blocking=False)
        assert not got
        sem.release()
    trace = s.trace()
    sem_events = [ev for ev in trace if ev.obj == sem.obj]
    # exactly one acquire/obtain/release triple, nothing for the failure
    assert [ev.etype for ev in sem_events] == [
        EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE
    ]


def test_timeout_expiry_emits_nothing():
    with ProfilingSession() as s:
        sem = s.semaphore(1, "pool")
        sem.acquire()
        assert not sem.acquire(timeout=0.01)
        sem.release()
    trace = s.trace()
    sem_events = [ev for ev in trace if ev.obj == sem.obj]
    assert [ev.etype for ev in sem_events] == [
        EventType.ACQUIRE, EventType.OBTAIN, EventType.RELEASE
    ]


def test_bounded_semaphore_still_bounded():
    with ProfilingSession() as s:
        sem = s.semaphore(1, "b", bounded=True)
        with sem:
            pass
        with pytest.raises(ValueError):
            sem.release()


class TestAutopatch:
    def test_semaphore_patched(self):
        with ProfilingSession() as s:
            with patch_threading(s):
                sem = threading.Semaphore(1)
                assert isinstance(sem, TracedSemaphore)
                with sem:
                    pass
        trace = s.trace()
        assert any(
            info.kind == ObjectKind.SEMAPHORE for info in trace.objects.values()
        )
        assert any(ev.etype == EventType.OBTAIN for ev in trace)

    def test_bounded_semaphore_patched(self):
        with ProfilingSession() as s:
            with patch_threading(s):
                sem = threading.BoundedSemaphore(1)
                assert isinstance(sem, TracedSemaphore)
                with sem:
                    pass
                with pytest.raises(ValueError):
                    sem.release()

    def test_patch_restores_factories(self):
        before = (threading.Semaphore, threading.BoundedSemaphore)
        with ProfilingSession() as s:
            with patch_threading(s):
                pass
        assert (threading.Semaphore, threading.BoundedSemaphore) == before

    def test_semaphore_contention_visible_in_analysis(self):
        from repro.core.analyzer import analyze

        with ProfilingSession() as s:
            with patch_threading(s):
                sem = threading.Semaphore(1)

                def worker():
                    for _ in range(5):
                        with sem:
                            time.sleep(0.002)

                threads = [threading.Thread(target=worker) for _ in range(3)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        report = analyze(s.trace()).report
        assert report.lock("Semaphore#1").total_invocations == 15
