"""Timestamp sources for the instrumentation layer.

The paper reads the POWER7 time-base register (``mftb``; ``rdtsc`` on
x86) for low-overhead user-space timestamps.  The portable Python
equivalent is :func:`time.perf_counter_ns`, a monotonic, cross-thread-
consistent nanosecond counter.  :class:`VirtualClock` provides a
manually-advanced clock so instrumentation tests are deterministic.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "MonotonicClock", "VirtualClock"]


class Clock(Protocol):
    """Anything that yields monotonically non-decreasing nanoseconds."""

    def now_ns(self) -> int:  # pragma: no cover - protocol
        ...


class MonotonicClock:
    """Wall-clock source backed by :func:`time.perf_counter_ns`."""

    __slots__ = ()

    def now_ns(self) -> int:
        return time.perf_counter_ns()


class VirtualClock:
    """Manually advanced clock for deterministic instrumentation tests."""

    __slots__ = ("_now",)

    def __init__(self, start_ns: int = 0):
        self._now = start_ns

    def now_ns(self) -> int:
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Move time forward; returns the new reading."""
        if delta_ns < 0:
            raise ValueError("clock cannot go backwards")
        self._now += delta_ns
        return self._now
