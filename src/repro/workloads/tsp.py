"""Travelling Salesman Problem workload (Pthreads TSP, 10 cities).

A real branch-and-bound search over a seeded random distance matrix, run
inside the simulator (paper §V.E).  All threads share one global FIFO
queue of partial paths protected by ``Qlock``; each dequeued path is
expanded (one simulated compute block per feasible extension), complete
tours update the shared incumbent under ``MinLock``, and viable children
are pushed back in one batch.

The paper finds ``Qlock`` occupies ~68% of the critical path at 24
threads and that splitting it into ``Q_headlock``/``Q_taillock`` (the
two-lock queue) buys ~19% end-to-end; ``split_queue=True`` applies that
optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sim.program import Program
from repro.workloads.base import Workload, register
from repro.workloads.queues import make_queue

__all__ = ["TSP"]


@dataclass
class _SearchState:
    """Shared branch-and-bound state."""

    queue: Any
    min_lock: Any
    dist: np.ndarray
    min_out: np.ndarray  # per-city cheapest outgoing edge (bound helper)
    best: float
    in_flight: int
    ncities: int


@register
class TSP(Workload):
    """Branch-and-bound TSP with a global work queue."""

    name = "tsp"

    def __init__(
        self,
        ncities: int = 10,
        instance_seed: int = 7,
        q_op_cost: float = 0.0018,
        expand_cost: float = 0.02,
        initial_bound_slack: float = 1.05,
        best_update_cost: float = 0.004,
        idle_backoff: float = 0.01,
        split_queue: bool = False,
    ):
        self.ncities = ncities
        self.instance_seed = instance_seed
        self.q_op_cost = q_op_cost
        self.expand_cost = expand_cost
        self.initial_bound_slack = initial_bound_slack
        self.best_update_cost = best_update_cost
        self.idle_backoff = idle_backoff
        self.split_queue = split_queue

    # -- instance -------------------------------------------------------------

    def make_instance(self) -> np.ndarray:
        """Symmetric random distance matrix (fixed by ``instance_seed``)."""
        rng = np.random.Generator(np.random.PCG64(self.instance_seed))
        n = self.ncities
        coords = rng.uniform(0.0, 100.0, size=(n, 2))
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        np.fill_diagonal(dist, np.inf)
        return dist

    @staticmethod
    def greedy_tour(dist: np.ndarray) -> float:
        """Nearest-neighbour tour cost — the initial incumbent bound."""
        n = len(dist)
        visited = {0}
        cur, total = 0, 0.0
        while len(visited) < n:
            order = np.argsort(dist[cur])
            nxt = next(int(c) for c in order if int(c) not in visited)
            total += dist[cur, nxt]
            visited.add(nxt)
            cur = nxt
        return total + float(dist[cur, 0])

    # -- construction ------------------------------------------------------------

    def build(self, prog: Program, nthreads: int) -> None:
        dist = self.make_instance()
        state = _SearchState(
            queue=make_queue(prog, "Q", self.q_op_cost, self.split_queue),
            min_lock=prog.mutex("MinLock"),
            dist=dist,
            min_out=np.min(np.where(np.isfinite(dist), dist, np.inf), axis=1),
            best=self.greedy_tour(dist) * self.initial_bound_slack,
            in_flight=0,
            ncities=self.ncities,
        )
        # Seed: tours start at city 0; one task per first hop.
        for city in range(1, self.ncities):
            state.queue._items.append(((0, city), float(dist[0, city])))
            state.in_flight += 1
        prog.spawn_workers(nthreads, self._worker, state)

    def _bound(self, state: _SearchState, path: tuple, cost: float) -> float:
        """Admissible bound: path cost + cheapest way out of every open city."""
        remaining = [c for c in range(state.ncities) if c not in path]
        return cost + float(state.min_out[list(remaining) + [path[-1]]].sum())

    # -- thread body -----------------------------------------------------------------

    def _worker(self, env, wid: int, state: _SearchState):
        backoff = self.idle_backoff
        while True:
            task = yield from state.queue.get(env)
            if task is None:
                if state.in_flight == 0:
                    return
                yield env.yield_core()  # sched_yield: let ready threads run
                yield env.compute(backoff)
                backoff = min(backoff * 2, 0.5)
                continue
            backoff = self.idle_backoff
            yield from self._expand(env, state, task)

    def _expand(self, env, state: _SearchState, task: tuple):
        path, cost = task
        last = path[-1]
        n = state.ncities
        children = []
        for city in range(1, n):
            if city in path:
                continue
            yield env.compute(self.expand_cost)  # feasibility + bound math
            c2 = cost + float(state.dist[last, city])
            if len(path) + 1 == n:
                tour = c2 + float(state.dist[city, 0])
                if tour < state.best:
                    yield env.acquire(state.min_lock)
                    yield env.compute(self.best_update_cost)
                    if tour < state.best:
                        state.best = tour
                    yield env.release(state.min_lock)
            elif self._bound(state, path + (city,), c2) < state.best:
                children.append((path + (city,), c2))
        state.in_flight += len(children)
        yield from state.queue.put_many(env, children)
        state.in_flight -= 1
