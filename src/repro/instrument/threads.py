"""Traced threads for real runs (``pthread_create``/``join``/``exit``)."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import TraceError
from repro.trace.events import EventType

if TYPE_CHECKING:  # pragma: no cover
    from repro.instrument.session import ProfilingSession

__all__ = ["TracedThread"]

_real_thread_factory = threading.Thread  # bound pre-patching (see autopatch)


class TracedThread:
    """A ``threading.Thread`` wrapper emitting lifecycle events.

    The child's tid is allocated at construction so the parent's
    THREAD_CREATE can reference it; THREAD_START/THREAD_EXIT bracket the
    target inside the child.
    """

    def __init__(
        self,
        session: "ProfilingSession",
        target: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        name: str = "",
    ):
        self.session = session
        self.tid = session.allocate_tid(name)
        self.name = session._thread_names[self.tid]
        self._target = target
        self._args = args
        self._kwargs = kwargs or {}
        self._real = _real_thread_factory(target=self._bootstrap, name=self.name)
        self._started = False
        self.result: Any = None
        self.exception: BaseException | None = None

    def _bootstrap(self) -> None:
        s = self.session
        s.adopt_tid(self.tid)
        s.emit_here(EventType.THREAD_START)
        try:
            self.result = self._target(*self._args, **self._kwargs)
        except BaseException as exc:  # surfaced on join()
            self.exception = exc
        finally:
            s.emit_here(EventType.THREAD_EXIT)

    def start(self) -> None:
        """Start the thread, recording THREAD_CREATE in the parent."""
        if self._started:
            raise TraceError(f"thread {self.name} already started")
        self._started = True
        self.session.emit_here(EventType.THREAD_CREATE, arg=self.tid)
        self._real.start()

    def join(self, timeout: float | None = None) -> None:
        """Join, recording JOIN_BEGIN/JOIN_END; re-raises target exceptions."""
        s = self.session
        s.emit_here(EventType.JOIN_BEGIN, arg=self.tid)
        self._real.join(timeout)
        s.emit_here(EventType.JOIN_END, arg=self.tid)
        if self.exception is not None:
            raise self.exception

    def is_alive(self) -> bool:
        return self._real.is_alive()
