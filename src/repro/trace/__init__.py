"""Trace substrate: event records, containers, file formats and validation.

This package is the equivalent of the paper's trace file (Fig. 3): the
instrumentation module (real threads, :mod:`repro.instrument`) and the
simulator (:mod:`repro.sim`) both emit the event stream defined here, and
the analysis module (:mod:`repro.core`) consumes it.
"""

from repro.trace.events import Event, EventType, ObjectKind
from repro.trace.trace import ObjectInfo, Trace
from repro.trace.builder import TraceBuilder
from repro.trace.digest import file_digest, trace_digest
from repro.trace.framing import (
    CHUNK_MAGIC,
    Frame,
    decode_frame,
    encode_records_frame,
    encode_trailer_frame,
    iter_frames,
    sort_stream_records,
    split_records,
)
from repro.trace.importers import IMPORT_FORMATS, import_perf_jsonl, import_trace
from repro.trace.merge import merge_traces
from repro.trace.reader import iter_trace_chunks, read_trace
from repro.trace.shard import CutPoint, find_cuts, select_cuts
from repro.trace.stats import TraceStats, compute_trace_stats
from repro.trace.transform import demote_orphan_contention, filter_threads, slice_time
from repro.trace.writer import write_trace
from repro.trace.validate import validate_trace

__all__ = [
    "Event",
    "EventType",
    "ObjectKind",
    "ObjectInfo",
    "Trace",
    "TraceBuilder",
    "read_trace",
    "iter_trace_chunks",
    "CHUNK_MAGIC",
    "Frame",
    "decode_frame",
    "encode_records_frame",
    "encode_trailer_frame",
    "iter_frames",
    "split_records",
    "sort_stream_records",
    "merge_traces",
    "slice_time",
    "filter_threads",
    "demote_orphan_contention",
    "IMPORT_FORMATS",
    "import_trace",
    "import_perf_jsonl",
    "TraceStats",
    "compute_trace_stats",
    "write_trace",
    "validate_trace",
    "trace_digest",
    "file_digest",
    "CutPoint",
    "find_cuts",
    "select_cuts",
]
