"""Sampling capture: overhead reduction and ranking recovery.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_sampling.py --quick
    PYTHONPATH=src python benchmarks/bench_sampling.py --json BENCH_SAMPLING.json

Two claims are measured and asserted (EXPERIMENTS.md, docs/sampling.md):

* **Capture-overhead reduction** — a live ``ProfilingSession`` at
  ``sample_rate=0.1`` buffers at least ``--min-reduction`` (default 5x)
  fewer lock events than full capture of the same workload, with the
  trace bytes shrinking in proportion.  Event volume is the asserted
  proxy: it is deterministic, unlike wall time on shared CI runners
  (wall times are still recorded as a trajectory artifact).
* **Ranking recovery** — on every golden case, the statistical
  estimator over a rate-0.1 sample recovers the exact engine's top-1
  critical lock (asserted) and its top-3 set (recorded, asserted at
  rate >= 0.5), with the exact ``cp_fraction`` inside the 90% CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.analyzer import analyze
from repro.instrument import ProfilingSession
from repro.sampling import cross_validate, downsample_trace
from repro.trace.events import EventType, ObjectKind
from repro.workloads import get_workload

#: Keep in sync with tests/golden/test_golden_reports.py::CASES.
CASES = {
    "micro": ("micro", {}, 4, 0),
    "radiosity": ("radiosity", {"total_tasks": 80, "iterations": 2}, 4, 11),
    "ldap": (
        "openldap",
        {"requests": 150, "nbuckets": 2, "write_prob": 0.35,
         "write_cost": 0.12, "lookup_cost": 0.04},
        6,
        1,
    ),
}

#: Cases large enough for the top-1 recovery assertion at rate 0.1
#: (micro keeps ~1 invocation per lock at 10% — too sparse to assert).
RECOVERY_CASES = ("radiosity", "ldap")

_LOCK_VERBS = (int(EventType.ACQUIRE), int(EventType.OBTAIN), int(EventType.RELEASE))


def build_trace(case: str):
    workload, params, nthreads, seed = CASES[case]
    return get_workload(workload)(**params).run(nthreads=nthreads, seed=seed).trace


def lock_events(trace) -> int:
    import numpy as np

    locks = {o.obj for o in trace.objects.values() if o.kind.is_lock_like}
    mask = np.isin(trace.records["etype"], _LOCK_VERBS)
    mask &= np.isin(trace.records["obj"], np.fromiter(locks, dtype=np.int64))
    return int(mask.sum())


def capture_live(rate: float | None, nthreads: int = 4, rounds: int = 400):
    """Lock-heavy real-thread workload; returns (trace, capture_seconds)."""
    t0 = time.perf_counter()
    with ProfilingSession(name="bench", sample_rate=rate, sample_seed=1) as s:
        locks = [s.lock(f"m{i}") for i in range(4)]
        counters = [0] * 4

        def body(i):
            for r in range(rounds):
                lock = locks[(i + r) % 4]
                with lock:
                    counters[(i + r) % 4] += 1

        threads = [s.thread(body, args=(i,)) for i in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return s.trace(), time.perf_counter() - t0


def bench_capture(rate: float, nthreads: int, rounds: int) -> dict:
    full, t_full = capture_live(None, nthreads, rounds)
    sampled, t_sampled = capture_live(rate, nthreads, rounds)
    full_locks = lock_events(full)
    kept_locks = lock_events(sampled)
    return {
        "rate": rate,
        "threads": nthreads,
        "rounds": rounds,
        "full_events": len(full),
        "sampled_events": len(sampled),
        "full_lock_events": full_locks,
        "sampled_lock_events": kept_locks,
        "event_reduction": full_locks / max(1, kept_locks),
        "full_capture_s": round(t_full, 4),
        "sampled_capture_s": round(t_sampled, 4),
    }


def bench_recovery(case: str, rates: tuple[float, ...]) -> dict:
    """Ranking recovery at the pinned seed derivation (cross_validate
    with seed=0 — the same cells the golden tests and the oracle's
    sample-coverage invariant pin)."""
    trace = build_trace(case)
    t0 = time.perf_counter()
    exact = analyze(trace).report
    t_exact = time.perf_counter() - t0

    t0 = time.perf_counter()
    cv = cross_validate(trace, rates=rates, k=3, seed=0, exact=exact)
    t_est = time.perf_counter() - t0

    rows = []
    for rv in cv.rates:
        sampled = downsample_trace(trace, rv.rate, seed=rv.seed)
        rows.append({
            "rate": rv.rate,
            "seed": rv.seed,
            "events_kept": len(sampled),
            "exact_top3": rv.exact_top,
            "estimated_top3": rv.estimated_top,
            "top1_recovered": bool(
                rv.estimated_top[:1] == rv.exact_top[:1]
            ),
            "top3_recovered": bool(rv.recovered),
            "ci_cells": len(rv.coverage),
            "ci_covered": len([c for c in rv.coverage if c.covered]),
        })
    return {
        "case": case,
        "events": len(trace),
        "exact_analysis_s": round(t_exact, 4),
        "estimate_all_rates_s": round(t_est, 4),
        "rates": rows,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller live capture, ldap only (CI smoke job)")
    ap.add_argument("--rate", type=float, default=0.1,
                    help="sampling rate for the capture-overhead claim")
    ap.add_argument("--rates", nargs="*", type=float, default=[1.0, 0.5, 0.1],
                    metavar="R", help="rates swept for ranking recovery")
    ap.add_argument("--min-reduction", type=float, default=5.0,
                    help="lock-event reduction floor at --rate (default 5x)")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the numbers as JSON (perf trajectory)")
    ap.add_argument("--no-require-top1", dest="require_top1",
                    action="store_false", default=True,
                    help="skip the rate-0.1 top-1 recovery assertion")
    args = ap.parse_args(argv)

    failed = False

    rounds = 100 if args.quick else 400
    cap = bench_capture(args.rate, nthreads=4, rounds=rounds)
    print(f"live capture at rate {args.rate}: "
          f"{cap['full_lock_events']} -> {cap['sampled_lock_events']} lock events "
          f"({cap['event_reduction']:.1f}x reduction); "
          f"wall {cap['full_capture_s']:.2f}s -> {cap['sampled_capture_s']:.2f}s")
    if cap["event_reduction"] < args.min_reduction:
        print(f"FAIL: event reduction {cap['event_reduction']:.1f}x below the "
              f"{args.min_reduction}x floor", file=sys.stderr)
        failed = True

    cases = ["ldap"] if args.quick else list(RECOVERY_CASES)
    rates = tuple(args.rates)
    recovery = []
    for case in cases:
        res = bench_recovery(case, rates)
        recovery.append(res)
        print(f"\n{case}: {res['events']} events, "
              f"exact analysis {res['exact_analysis_s']:.2f}s, "
              f"all estimates {res['estimate_all_rates_s']:.2f}s")
        for row in res["rates"]:
            mark = "ok " if row["top3_recovered"] else "MISS"
            print(f"  rate {row['rate']:4.2f}: kept {row['events_kept']:6d} events, "
                  f"top-3 {mark} top-1 {'ok' if row['top1_recovered'] else 'flip'}  "
                  f"CI coverage {row['ci_covered']}/{row['ci_cells']}")
            if not row["top3_recovered"]:
                print(f"FAIL: {case} rate {row['rate']} lost the top-3 set: "
                      f"{row['estimated_top3']} vs {row['exact_top3']}",
                      file=sys.stderr)
                failed = True
            # Top-1 order is asserted where the headline claim lives:
            # the low-rate regime (<= 0.25) and the exact end (1.0).
            # At intermediate rates two near-saturated locks can tie at
            # the clipped point estimate and flip order.
            if (args.require_top1 and not row["top1_recovered"]
                    and (row["rate"] <= 0.25 or row["rate"] >= 1.0)):
                print(f"FAIL: {case} rate {row['rate']} lost the top-1 "
                      f"critical lock: {row['estimated_top3']} vs "
                      f"{row['exact_top3']}", file=sys.stderr)
                failed = True

    if args.json:
        with open(args.json, "w") as f:
            json.dump(
                {"bench": "sampling", "quick": args.quick,
                 "capture": cap, "recovery": recovery},
                f, indent=2,
            )
            f.write("\n")
        print(f"\nnumbers written to {args.json}")

    if failed:
        return 1
    print(f"\nok: >={args.min_reduction}x capture reduction at rate {args.rate}, "
          f"top-3 set recovered at every rate, top-1 at rate <= 0.25")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
