"""Paper Fig. 9: Radiosity's top locks vs thread count (4/8/16/24).

Shape assertions: tq[0].qlock's CP share grows monotonically with
threads and dominates beyond 8 threads, reaching the tens of percent at
24 (paper: 39.15%) while Wait Time stays far lower (paper: 6.40%).
"""

import pytest

from repro.experiments import fig9

from conftest import run_once


@pytest.mark.benchmark(group="fig9")
def test_fig9(benchmark, show):
    result = run_once(benchmark, fig9.run, thread_counts=(4, 8, 16, 24), seed=0)
    show(result.render())
    v = result.values
    tq0 = "tq[0].qlock"

    shares = [v[n][tq0]["cp_fraction"] for n in (4, 8, 16, 24)]
    assert shares == sorted(shares), "tq[0].qlock CP share must grow with threads"
    assert shares[-1] > 0.25  # paper: ~39% at 24 threads

    # Beyond 8 threads tq[0].qlock is the most critical lock.
    for n in (16, 24):
        assert v[n][tq0]["cp_fraction"] > v[n]["freeInter"]["cp_fraction"]

    # The CP weight far exceeds the wait weight at 24 threads.
    assert v[24][tq0]["cp_fraction"] > 2 * v[24][tq0]["wait_fraction"]
