"""Pluggable lock-acquisition protocols (see :mod:`.base` for the API).

Registry names:

========== ==========================================================
fifo        strict arrival order everywhere (the engine's baseline)
priority    highest effective priority first, no boosting
pi          priority inheritance (transitive holder boosting)
ceiling     priority ceiling (boost on acquisition)
spin        adaptive spin-then-block with wake-up latency + backoff
reader-pref readers never wait behind queued writers
writer-pref queued writers run before queued readers
phase-fair  alternating reader/writer phases
recorded    replay a trace's own grant order (identity replay)
========== ==========================================================

Use :func:`get_protocol` to construct by name; ``recorded`` is built
from a trace via :meth:`RecordedProtocol.from_trace` and is constructed
automatically by the replay layer, not from CLI parameters.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SimulationError
from repro.sim.protocols.base import FifoProtocol, LockProtocol
from repro.sim.protocols.priority import (
    PriorityCeilingProtocol,
    PriorityInheritanceProtocol,
    PriorityProtocol,
)
from repro.sim.protocols.recorded import RecordedProtocol
from repro.sim.protocols.rw import PhaseFairRW, ReaderPreferenceRW, WriterPreferenceRW
from repro.sim.protocols.spin import AdaptiveSpinProtocol

__all__ = [
    "LockProtocol",
    "FifoProtocol",
    "PriorityProtocol",
    "PriorityInheritanceProtocol",
    "PriorityCeilingProtocol",
    "AdaptiveSpinProtocol",
    "ReaderPreferenceRW",
    "WriterPreferenceRW",
    "PhaseFairRW",
    "RecordedProtocol",
    "PROTOCOLS",
    "PROTOCOL_DOCS",
    "get_protocol",
    "available_protocols",
]

PROTOCOLS: dict[str, type[LockProtocol]] = {
    FifoProtocol.name: FifoProtocol,
    PriorityProtocol.name: PriorityProtocol,
    PriorityInheritanceProtocol.name: PriorityInheritanceProtocol,
    PriorityCeilingProtocol.name: PriorityCeilingProtocol,
    AdaptiveSpinProtocol.name: AdaptiveSpinProtocol,
    ReaderPreferenceRW.name: ReaderPreferenceRW,
    WriterPreferenceRW.name: WriterPreferenceRW,
    PhaseFairRW.name: PhaseFairRW,
    RecordedProtocol.name: RecordedProtocol,
}

PROTOCOL_DOCS: dict[str, str] = {
    "fifo": "strict arrival-order grants (baseline)",
    "priority": "highest-priority waiter first, no boosting",
    "pi": "priority inheritance: blocked waiters boost the holder",
    "ceiling": "priority ceiling: acquiring boosts to the lock's ceiling",
    "spin": "adaptive spin-then-block (spin_limit, wake_latency, backoff)",
    "reader-pref": "readers join active read phases past queued writers",
    "writer-pref": "queued writers run before queued readers",
    "phase-fair": "alternating reader/writer phases (bounded unfairness)",
    "recorded": "identity replay of a trace's recorded grant order",
}


def available_protocols() -> list[str]:
    return sorted(PROTOCOLS)


def get_protocol(name: str, **params: Any) -> LockProtocol:
    """Construct a protocol by registry name."""
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise SimulationError(
            f"unknown lock protocol {name!r}; available: "
            + ", ".join(available_protocols())
        ) from None
    if cls is RecordedProtocol and not params:
        raise SimulationError(
            "the 'recorded' protocol needs a trace; use "
            "RecordedProtocol.from_trace() or the replay layer"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise SimulationError(f"bad parameters for protocol {name!r}: {exc}") from None
