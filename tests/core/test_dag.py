"""Forward event DAG: longest path, backtracking, re-weighting."""

import pytest

from repro.core.critical_path import compute_critical_path
from repro.core.dag import build_event_graph
from repro.trace.events import EventType
from repro.workloads import MicroBenchmark, SyntheticLocks

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def micro_graph():
    trace = make_micro_program().run().trace
    return build_event_graph(trace)


def test_completion_equals_duration(micro_graph):
    assert micro_graph.completion_time() == pytest.approx(12.0)


def test_matches_backward_walk(micro_graph):
    cp = compute_critical_path(micro_graph.trace)
    assert micro_graph.completion_time() == pytest.approx(cp.length)


def test_critical_events_form_a_path(micro_graph):
    path = micro_graph.critical_events()
    records = micro_graph.trace.records
    times = [float(records["time"][p]) for p in path]
    assert times == sorted(times)
    assert records["etype"][path[-1]] == int(EventType.THREAD_EXIT)
    assert records["etype"][path[0]] == int(EventType.THREAD_START)


def test_shrink_l2_prediction(micro_graph):
    # Shrinking L2 CS 2.5 -> 1.5: hand-computed completion is 9.5.
    w = micro_graph.shrunk_weights(obj=1, factor=1.5 / 2.5)
    assert micro_graph.completion_time(w) == pytest.approx(9.5)


def test_shrink_l1_prediction(micro_graph):
    # Shrinking L1 CS 2.0 -> 1.0: hand-computed completion is 11.0.
    w = micro_graph.shrunk_weights(obj=0, factor=0.5)
    assert micro_graph.completion_time(w) == pytest.approx(11.0)


def test_eliminate_both_locks():
    trace = make_micro_program().run().trace
    g = build_event_graph(trace)
    w = g.shrunk_weights(obj=0, factor=0.0)
    # L1 gone: CS2 chain alone = 4*2.5 = 10.
    assert g.completion_time(w) == pytest.approx(10.0)


def test_negative_factor_rejected(micro_graph):
    with pytest.raises(ValueError, match="factor"):
        micro_graph.shrunk_weights(obj=0, factor=-0.5)


def test_agrees_on_barrier_workload():
    res = SyntheticLocks(barrier_every=10, ops_per_thread=30).run(nthreads=6, seed=3)
    g = build_event_graph(res.trace)
    assert g.completion_time() == pytest.approx(res.completion_time)


def test_agrees_on_spawn_join_program():
    from repro.sim import Program

    prog = Program()

    def child(env, d):
        yield env.compute(d)

    def parent(env):
        hs = []
        for d in (1.0, 4.0, 2.0):
            h = yield env.spawn(child, d)
            hs.append(h)
        yield from env.join_all(hs)

    prog.spawn(parent)
    res = prog.run()
    g = build_event_graph(res.trace)
    assert g.completion_time() == pytest.approx(res.completion_time) == 4.0


def test_to_networkx_roundtrip(micro_graph):
    g = micro_graph.to_networkx()
    assert g.number_of_nodes() == len(micro_graph.trace)
    assert g.number_of_edges() == len(micro_graph.edge_src)


def test_exec_spans_cover_compute():
    res = MicroBenchmark().run(nthreads=2, seed=0)
    g = build_event_graph(res.trace)
    total_span = sum(s.t1 - s.t0 for s in g.exec_spans)
    # Each thread executes 4.5 time units of critical sections.
    assert total_span == pytest.approx(9.0)


def test_completion_time_without_thread_exits():
    # Truncated capture: cut the trace before the first THREAD_EXIT.  The
    # fallback takes the max distance over all events instead of 0.0 (which
    # made what-if/forecast on partial traces report infinite speedup).
    from repro.trace.trace import Trace

    trace = make_micro_program().run().trace
    exits = trace.records["etype"] == int(EventType.THREAD_EXIT)
    cut = int(exits.nonzero()[0][0])
    sub = Trace(
        records=trace.records[:cut].copy(),
        objects=dict(trace.objects),
        threads=dict(trace.threads),
        meta=dict(trace.meta),
    )
    g = build_event_graph(sub)
    assert g.completion_time() > 0.0
    assert g.completion_time() == pytest.approx(sub.duration)
    # backtracking also anchors on the farthest event instead of bailing
    path = g.critical_events()
    assert path and g.trace.records["etype"][path[0]] == int(EventType.THREAD_START)


def test_sources_cached_once():
    import numpy as np

    g = build_event_graph(make_micro_program().run().trace)
    assert g.source_pos is not None  # precomputed by the builder
    first = g.sources
    assert g.sources is first  # no per-call rebuild
    # lazily computed for hand-built graphs too
    g.source_pos = None
    assert np.array_equal(g.sources, first)


def test_critical_events_tolerates_independent_dist():
    # Regression for exact-equality backtracking: a distance array that is
    # mathematically identical but rounded differently (here: recomputed
    # in ms and scaled back to seconds) drifts a few ulps from the
    # internal sweep on a many-edge trace.  Exact `==` comparison stopped
    # the walk mid-path; isclose recovers the full source-anchored path.
    import numpy as np

    trace = SyntheticLocks(ops_per_thread=120, nlocks=4).run(nthreads=4, seed=3).trace
    g = build_event_graph(trace)
    dist = g.longest_dist()
    scale = 1e-3
    rescaled = g.longest_dist(g.edge_w * scale) / scale
    finite = np.isfinite(dist)
    # the rescale round-trip must actually perturb values, or this test
    # would not exercise the tolerance at all
    assert np.any(dist[finite] != rescaled[finite])
    assert np.allclose(dist[finite], rescaled[finite], rtol=1e-9)

    path = g.critical_events(dist=rescaled)
    records = trace.records
    assert records["etype"][path[0]] == int(EventType.THREAD_START)
    assert records["etype"][path[-1]] == int(EventType.THREAD_EXIT)
    times = [float(records["time"][p]) for p in path]
    assert times == sorted(times)
