"""Standalone SVG timeline rendering (paper Figs. 1 & 7 as vector art).

No dependencies: emits a self-contained SVG with one lane per thread,
colored critical-section boxes (legend included), hatched blocked
intervals, and a red overlay marking the critical path — the publication
view of :func:`repro.viz.timeline.render_timeline`.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.core.analyzer import AnalysisResult, analyze
from repro.trace.trace import Trace

__all__ = ["render_svg", "write_svg"]

# Color-blind-safe categorical palette (Okabe-Ito).
_PALETTE = [
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
]
_CP_COLOR = "#D32F2F"

_LANE_H = 26
_LANE_GAP = 8
_MARGIN_L = 110
_MARGIN_T = 30
_LEGEND_H = 26


def render_svg(
    trace: Trace,
    analysis: AnalysisResult | None = None,
    width: int = 900,
) -> str:
    """Render the execution as an SVG string."""
    if analysis is None:
        analysis = analyze(trace, validate=False)
    duration = trace.duration
    if duration <= 0:
        return '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>'
    t0 = trace.start_time
    plot_w = width - _MARGIN_L - 20
    scale = plot_w / duration

    def x(t: float) -> float:
        return _MARGIN_L + (t - t0) * scale

    tids = sorted(analysis.timelines)
    locks_ranked = [
        m for m in analysis.report.top_locks() if m.total_invocations > 0
    ]
    color_of = {
        m.obj: _PALETTE[i % len(_PALETTE)] for i, m in enumerate(locks_ranked)
    }

    height = (
        _MARGIN_T
        + len(tids) * (_LANE_H + _LANE_GAP)
        + _LANE_H  # critical-path lane
        + _LEGEND_H
        + 20
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{_MARGIN_L}" y="16">execution 0 .. {duration:.4g} '
        f"(critical path in red)</text>",
    ]

    lane_y = {tid: _MARGIN_T + i * (_LANE_H + _LANE_GAP) for i, tid in enumerate(tids)}
    for tid in tids:
        tl = analysis.timelines[tid]
        y = lane_y[tid]
        parts.append(
            f'<text x="4" y="{y + _LANE_H * 0.65:.1f}">{escape(tl.name)}</text>'
        )
        # Lifetime baseline.
        parts.append(
            f'<rect x="{x(tl.start):.1f}" y="{y + _LANE_H * 0.4:.1f}" '
            f'width="{max(1.0, (tl.end - tl.start) * scale):.1f}" '
            f'height="{_LANE_H * 0.2:.1f}" fill="#E0E0E0"/>'
        )
        # Blocked intervals.
        for w in tl.waits:
            if w.duration <= 0:
                continue
            parts.append(
                f'<rect x="{x(w.start):.1f}" y="{y + _LANE_H * 0.3:.1f}" '
                f'width="{w.duration * scale:.1f}" height="{_LANE_H * 0.4:.1f}" '
                f'fill="#BDBDBD" opacity="0.7">'
                f"<title>blocked on {escape(trace.object_name(w.obj))}</title></rect>"
            )
        # Critical sections.
        for obj, holds in tl.holds.items():
            color = color_of.get(obj, "#777777")
            name = escape(trace.object_name(obj))
            for h in holds:
                parts.append(
                    f'<rect x="{x(h.start):.1f}" y="{y:.1f}" '
                    f'width="{max(1.0, h.duration * scale):.1f}" '
                    f'height="{_LANE_H * 0.8:.1f}" fill="{color}" rx="2">'
                    f"<title>{name} [{h.start:.4g}, {h.end:.4g}]</title></rect>"
                )

    # Critical-path lane + per-thread overlay.
    cp_y = _MARGIN_T + len(tids) * (_LANE_H + _LANE_GAP)
    parts.append(
        f'<text x="4" y="{cp_y + _LANE_H * 0.65:.1f}" fill="{_CP_COLOR}">'
        "critical path</text>"
    )
    for p in analysis.critical_path.pieces:
        if p.duration <= 0:
            continue
        parts.append(
            f'<rect x="{x(p.start):.1f}" y="{cp_y:.1f}" '
            f'width="{max(1.0, p.duration * scale):.1f}" '
            f'height="{_LANE_H * 0.5:.1f}" fill="{_CP_COLOR}">'
            f"<title>on {escape(trace.thread_name(p.tid))}</title></rect>"
        )
        y = lane_y.get(p.tid)
        if y is not None:
            parts.append(
                f'<rect x="{x(p.start):.1f}" y="{y - 3:.1f}" '
                f'width="{max(1.0, p.duration * scale):.1f}" height="2.5" '
                f'fill="{_CP_COLOR}"/>'
            )

    # Legend.
    lx = _MARGIN_L
    ly = cp_y + _LANE_H + 14
    for m in locks_ranked[: len(_PALETTE)]:
        color = color_of[m.obj]
        parts.append(f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" fill="{color}"/>')
        label = escape(m.name)
        parts.append(f'<text x="{lx + 14}" y="{ly}">{label}</text>')
        lx += 14 + 7 * len(m.name) + 18
    parts.append("</svg>")
    return "".join(parts)


def write_svg(
    trace: Trace,
    path: str | Path,
    analysis: AnalysisResult | None = None,
    width: int = 900,
) -> Path:
    """Write the SVG rendering to ``path``."""
    path = Path(path)
    path.write_text(render_svg(trace, analysis, width), encoding="utf-8")
    return path
